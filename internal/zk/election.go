package zk

import (
	"context"
	"errors"
	"fmt"
	"path"
	"sort"
	"strings"
)

// Election is the standard ZooKeeper leader-election recipe: each
// candidate creates an ephemeral sequential znode under the election
// path; the lowest sequence number is the leader. The HBase master and
// its backup use this, so killing the active master promotes the
// backup automatically — the failover the paper's deployment relies on
// (one HMaster, one BackupHMaster).
type Election struct {
	session Client
	root    string
	me      string // the candidate znode this session created
	id      string // human-readable candidate identity
}

// EnsurePath creates p and any missing ancestors as persistent znodes,
// ignoring nodes that already exist (like ZooKeeper's creatingParents
// recipe).
func EnsurePath(s Client, p string) error {
	p = normalize(p)
	if p == "/" {
		return nil
	}
	parts := strings.Split(strings.TrimPrefix(p, "/"), "/")
	cur := ""
	for _, part := range parts {
		cur += "/" + part
		if err := s.Create(cur, nil, false); err != nil && !errors.Is(err, ErrNodeExists) {
			return err
		}
	}
	return nil
}

// JoinElection registers the candidate id under root (created when
// missing) and returns the election handle.
func JoinElection(s Client, root, id string) (*Election, error) {
	root = normalize(root)
	if err := EnsurePath(s, root); err != nil {
		return nil, fmt.Errorf("zk: create election root: %w", err)
	}
	me, err := s.CreateSequential(root+"/candidate-", []byte(id), true)
	if err != nil {
		return nil, fmt.Errorf("zk: join election: %w", err)
	}
	return &Election{session: s, root: root, me: me, id: id}, nil
}

// candidates returns the sorted candidate znode names.
func (e *Election) candidates() ([]string, error) {
	kids, err := e.session.Children(e.root)
	if err != nil {
		return nil, err
	}
	sort.Strings(kids)
	return kids, nil
}

// IsLeader reports whether this candidate currently holds leadership.
func (e *Election) IsLeader() (bool, error) {
	kids, err := e.candidates()
	if err != nil {
		return false, err
	}
	if len(kids) == 0 {
		return false, nil
	}
	return path.Base(e.me) == kids[0], nil
}

// Leader returns the identity payload of the current leader.
func (e *Election) Leader() (string, error) {
	kids, err := e.candidates()
	if err != nil {
		return "", err
	}
	if len(kids) == 0 {
		return "", ErrNoNode
	}
	data, _, err := e.session.Get(e.root + "/" + kids[0])
	if err != nil {
		return "", err
	}
	return string(data), nil
}

// WatchLeadership arms a one-shot watch that fires when the candidate
// set changes (e.g. the leader's session expires), after which callers
// re-check IsLeader.
func (e *Election) WatchLeadership() (<-chan Event, error) {
	return e.session.WatchChildren(e.root)
}

// AwaitLeadership blocks until this candidate leads or ctx is done —
// the context-aware campaign loop: check, arm a watch, re-check,
// wait, re-arm (watches are one-shot, like real ZooKeeper). The
// leading-already fast path arms no watch, so repeated calls from a
// sitting leader don't pile dead channels onto the server. A watch
// armed before blocking stays registered if ctx is cancelled (or the
// re-check wins) until the next membership change fires it — the
// inherent cost of one-shot watches; it is one buffered channel per
// abandoned wait, released at the next change under the root.
func (e *Election) AwaitLeadership(ctx context.Context) error {
	for {
		lead, err := e.IsLeader()
		if err != nil {
			return err
		}
		if lead {
			return nil
		}
		ch, err := e.WatchLeadership()
		if err != nil {
			return err
		}
		// Re-check after arming so a change between the check and the
		// watch registration is never missed.
		lead, err = e.IsLeader()
		if err != nil {
			return err
		}
		if lead {
			return nil
		}
		select {
		case <-ch:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// Resign withdraws this candidacy.
func (e *Election) Resign() error {
	return e.session.Delete(e.me)
}
