package zk

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

func TestCreateGetSetDelete(t *testing.T) {
	s := NewServer()
	c := s.NewSession()
	defer c.Close()

	if err := c.Create("/a", []byte("v1"), false); err != nil {
		t.Fatal(err)
	}
	data, stat, err := c.Get("/a")
	if err != nil || string(data) != "v1" || stat.Version != 0 || stat.Ephemeral {
		t.Fatalf("get = %q %+v %v", data, stat, err)
	}
	if err := c.Set("/a", []byte("v2"), -1); err != nil {
		t.Fatal(err)
	}
	data, stat, _ = c.Get("/a")
	if string(data) != "v2" || stat.Version != 1 {
		t.Fatalf("after set: %q v%d", data, stat.Version)
	}
	if err := c.Delete("/a"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Get("/a"); !errors.Is(err, ErrNoNode) {
		t.Fatalf("err = %v, want ErrNoNode", err)
	}
}

func TestCreateErrors(t *testing.T) {
	s := NewServer()
	c := s.NewSession()
	defer c.Close()
	if err := c.Create("/a", nil, false); err != nil {
		t.Fatal(err)
	}
	if err := c.Create("/a", nil, false); !errors.Is(err, ErrNodeExists) {
		t.Fatalf("duplicate create: %v", err)
	}
	if err := c.Create("/missing/child", nil, false); !errors.Is(err, ErrNoParent) {
		t.Fatalf("orphan create: %v", err)
	}
}

func TestDeleteWithChildrenFails(t *testing.T) {
	s := NewServer()
	c := s.NewSession()
	defer c.Close()
	must(t, c.Create("/a", nil, false))
	must(t, c.Create("/a/b", nil, false))
	if err := c.Delete("/a"); !errors.Is(err, ErrNotEmpty) {
		t.Fatalf("err = %v, want ErrNotEmpty", err)
	}
	must(t, c.Delete("/a/b"))
	must(t, c.Delete("/a"))
}

func TestSetCompareAndSwap(t *testing.T) {
	s := NewServer()
	c := s.NewSession()
	defer c.Close()
	must(t, c.Create("/a", []byte("x"), false))
	if err := c.Set("/a", []byte("y"), 5); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("stale CAS: %v", err)
	}
	if err := c.Set("/a", []byte("y"), 0); err != nil {
		t.Fatal(err)
	}
}

func TestChildrenSorted(t *testing.T) {
	s := NewServer()
	c := s.NewSession()
	defer c.Close()
	must(t, c.Create("/p", nil, false))
	for _, k := range []string{"c", "a", "b"} {
		must(t, c.Create("/p/"+k, nil, false))
	}
	kids, err := c.Children("/p")
	if err != nil {
		t.Fatal(err)
	}
	if len(kids) != 3 || kids[0] != "a" || kids[2] != "c" {
		t.Fatalf("children = %v", kids)
	}
	if _, err := c.Children("/nope"); !errors.Is(err, ErrNoNode) {
		t.Fatal("children of missing node must fail")
	}
	// Nested children do not leak into the listing.
	must(t, c.Create("/p/a/deep", nil, false))
	kids, _ = c.Children("/p")
	if len(kids) != 3 {
		t.Fatalf("nested leak: %v", kids)
	}
}

func TestEphemeralRemovedOnClose(t *testing.T) {
	s := NewServer()
	owner := s.NewSession()
	watcher := s.NewSession()
	defer watcher.Close()

	must(t, owner.Create("/live", []byte("rs1"), true))
	_, stat, err := watcher.Get("/live")
	if err != nil || !stat.Ephemeral || stat.Owner != owner.ID() {
		t.Fatalf("stat = %+v %v", stat, err)
	}
	ch, err := watcher.Watch("/live")
	if err != nil {
		t.Fatal(err)
	}
	owner.Close()
	select {
	case ev := <-ch:
		if ev.Type != EventDeleted || ev.Path != "/live" {
			t.Fatalf("event = %+v", ev)
		}
	case <-time.After(time.Second):
		t.Fatal("deletion watch never fired")
	}
	if ok, _ := watcher.Exists("/live"); ok {
		t.Fatal("ephemeral must vanish with its session")
	}
}

func TestClosedSessionRejectsOps(t *testing.T) {
	s := NewServer()
	c := s.NewSession()
	c.Close()
	c.Close() // idempotent
	if err := c.Create("/x", nil, false); !errors.Is(err, ErrSessionClosed) {
		t.Fatalf("err = %v", err)
	}
	if _, err := c.Children("/"); !errors.Is(err, ErrSessionClosed) {
		t.Fatalf("err = %v", err)
	}
}

func TestWatchDataChange(t *testing.T) {
	s := NewServer()
	c := s.NewSession()
	defer c.Close()
	must(t, c.Create("/a", nil, false))
	ch, err := c.Watch("/a")
	if err != nil {
		t.Fatal(err)
	}
	must(t, c.Set("/a", []byte("new"), -1))
	select {
	case ev := <-ch:
		if ev.Type != EventDataChanged {
			t.Fatalf("event = %+v", ev)
		}
	case <-time.After(time.Second):
		t.Fatal("watch never fired")
	}
	// One-shot: a second change must not fire the consumed watch.
	must(t, c.Set("/a", []byte("newer"), -1))
	select {
	case ev := <-ch:
		t.Fatalf("one-shot watch fired twice: %+v", ev)
	case <-time.After(20 * time.Millisecond):
	}
}

func TestWatchChildren(t *testing.T) {
	s := NewServer()
	c := s.NewSession()
	defer c.Close()
	must(t, c.Create("/p", nil, false))
	ch, err := c.WatchChildren("/p")
	if err != nil {
		t.Fatal(err)
	}
	must(t, c.Create("/p/kid", nil, false))
	select {
	case ev := <-ch:
		if ev.Type != EventChildrenChanged || ev.Path != "/p" {
			t.Fatalf("event = %+v", ev)
		}
	case <-time.After(time.Second):
		t.Fatal("children watch never fired")
	}
}

func TestSequentialNodesOrdered(t *testing.T) {
	s := NewServer()
	c := s.NewSession()
	defer c.Close()
	must(t, c.Create("/q", nil, false))
	var paths []string
	for i := 0; i < 3; i++ {
		p, err := c.CreateSequential("/q/n-", []byte(fmt.Sprint(i)), false)
		if err != nil {
			t.Fatal(err)
		}
		paths = append(paths, p)
	}
	for i := 1; i < len(paths); i++ {
		if paths[i] <= paths[i-1] {
			t.Fatalf("sequential paths not increasing: %v", paths)
		}
	}
	if _, err := c.CreateSequential("/missing/n-", nil, false); !errors.Is(err, ErrNoParent) {
		t.Fatal("sequential under missing parent must fail")
	}
}

func TestElectionFailover(t *testing.T) {
	s := NewServer()
	active := s.NewSession()
	backup := s.NewSession()
	defer backup.Close()

	e1, err := JoinElection(active, "/election/hmaster", "master-1")
	if err != nil {
		t.Fatal(err)
	}
	e2, err := JoinElection(backup, "/election/hmaster", "master-2")
	if err != nil {
		t.Fatal(err)
	}
	if lead, _ := e1.IsLeader(); !lead {
		t.Fatal("first candidate must lead")
	}
	if lead, _ := e2.IsLeader(); lead {
		t.Fatal("second candidate must not lead")
	}
	if name, _ := e2.Leader(); name != "master-1" {
		t.Fatalf("leader = %q", name)
	}

	ch, err := e2.WatchLeadership()
	if err != nil {
		t.Fatal(err)
	}
	active.Close() // the active master dies
	select {
	case <-ch:
	case <-time.After(time.Second):
		t.Fatal("leadership watch never fired")
	}
	if lead, _ := e2.IsLeader(); !lead {
		t.Fatal("backup must take over")
	}
	if name, _ := e2.Leader(); name != "master-2" {
		t.Fatalf("leader after failover = %q", name)
	}
}

func TestElectionResign(t *testing.T) {
	s := NewServer()
	a := s.NewSession()
	b := s.NewSession()
	defer a.Close()
	defer b.Close()
	e1, err := JoinElection(a, "/el", "one")
	if err != nil {
		t.Fatal(err)
	}
	e2, err := JoinElection(b, "/el", "two")
	if err != nil {
		t.Fatal(err)
	}
	if err := e1.Resign(); err != nil {
		t.Fatal(err)
	}
	if lead, _ := e2.IsLeader(); !lead {
		t.Fatal("resignation must promote the next candidate")
	}
}

func TestNormalizePaths(t *testing.T) {
	s := NewServer()
	c := s.NewSession()
	defer c.Close()
	must(t, c.Create("a", nil, false)) // no leading slash
	if ok, _ := c.Exists("/a"); !ok {
		t.Fatal("paths must normalize")
	}
	if ok, _ := c.Exists("/a/"); !ok {
		t.Fatal("trailing slash must normalize")
	}
	if ev := EventCreated.String(); ev != "created" {
		t.Fatal("event string wrong")
	}
	if EventType(9).String() == "" {
		t.Fatal("unknown event must render")
	}
}

func must(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}

func TestAwaitLeadership(t *testing.T) {
	srv := NewServer()
	s1, s2 := srv.NewSession(), srv.NewSession()
	e1, err := JoinElection(s1, "/el-await", "one")
	if err != nil {
		t.Fatal(err)
	}
	e2, err := JoinElection(s2, "/el-await", "two")
	if err != nil {
		t.Fatal(err)
	}
	// The first candidate leads immediately.
	if err := e1.AwaitLeadership(context.Background()); err != nil {
		t.Fatal(err)
	}
	// The second blocks until the leader resigns.
	won := make(chan error, 1)
	go func() { won <- e2.AwaitLeadership(context.Background()) }()
	select {
	case err := <-won:
		t.Fatalf("follower won early: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	if err := e1.Resign(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-won:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("follower never promoted")
	}
	// A bounded wait that cannot win surfaces the deadline.
	s3 := srv.NewSession()
	e3, err := JoinElection(s3, "/el-await", "three")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := e3.AwaitLeadership(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
}
