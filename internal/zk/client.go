package zk

// Client is the coordination API shared by in-process sessions and
// remote (rpc-bridged) sessions. *Session satisfies it directly; nodes
// in other processes use a RemoteClient speaking to a Service. The
// recipes layered on top (EnsurePath, Election) accept a Client so
// they behave identically either way.
type Client interface {
	// ID returns the session identifier, unique per server.
	ID() int64
	// Create makes a znode at p with data. The parent must exist.
	Create(p string, data []byte, ephemeral bool) error
	// CreateSequential makes a znode named prefix + zero-padded
	// counter (per parent), returning the created path.
	CreateSequential(prefix string, data []byte, ephemeral bool) (string, error)
	// Get returns the data and stat of the znode at p.
	Get(p string) ([]byte, Stat, error)
	// Set replaces the data at p; version >= 0 is a compare-and-set,
	// -1 skips the check.
	Set(p string, data []byte, version int) error
	// Delete removes the znode at p, which must have no children.
	Delete(p string) error
	// Exists reports whether p exists.
	Exists(p string) (bool, error)
	// Children returns the sorted child names (not full paths) of p.
	Children(p string) ([]string, error)
	// Watch arms a one-shot watch on p's lifecycle and data.
	Watch(p string) (<-chan Event, error)
	// WatchChildren arms a one-shot watch for membership changes
	// under p.
	WatchChildren(p string) (<-chan Event, error)
	// Close expires the session, deleting its ephemeral znodes.
	Close()
}

var _ Client = (*Session)(nil)
