package zk

// service.go exposes a Server over the rpc fabric so processes that do
// not host the coordination service can still create sessions,
// ephemerals and elections. Liveness is keepalive-based: a remote
// session that goes silent past the TTL is expired server-side exactly
// like a closed local session — its ephemerals vanish and elections
// fail over. That is what turns a SIGKILLed node into a leadership
// change for everyone else.

import (
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/rpc"
)

// DefaultSessionTTL is how long a remote session may go silent before
// the service expires it.
const DefaultSessionTTL = 3 * time.Second

// zkOp is the single request DTO for every zk rpc method.
type zkOp struct {
	Session int64
	Path    string
	Data    []byte
	Flag    bool // ephemeral for create/createseq
	Version int  // compare-and-set for set
}

// zkResult is the single response DTO for every zk rpc method.
type zkResult struct {
	Session  int64
	Path     string
	Data     []byte
	Version  int
	Eph      bool
	Owner    int64
	OK       bool
	Children []string
}

func init() {
	gob.Register(&zkOp{})
	gob.Register(&zkResult{})
	rpc.RegisterWireError(ErrNoNode, ErrNodeExists, ErrNotEmpty,
		ErrNoParent, ErrSessionClosed, ErrBadVersion)
}

// Service serves a *Server's session API over rpc.
type Service struct {
	srv *Server
	ttl time.Duration

	mu       sync.Mutex
	sessions map[int64]*liveSession
	stopped  bool
	stop     chan struct{}
}

// liveSession is one remote session plus its liveness clock.
type liveSession struct {
	sess     *Session
	lastSeen time.Time
}

// NewService wraps srv; remote sessions silent longer than ttl are
// expired (ttl <= 0 uses DefaultSessionTTL). Stop the reaper with
// Close.
func NewService(srv *Server, ttl time.Duration) *Service {
	if ttl <= 0 {
		ttl = DefaultSessionTTL
	}
	s := &Service{
		srv:      srv,
		ttl:      ttl,
		sessions: make(map[int64]*liveSession),
		stop:     make(chan struct{}),
	}
	go s.reap()
	return s
}

// Register installs the service on n at addr with cfg.
func (s *Service) Register(n *rpc.Network, addr string, cfg rpc.ServerConfig) error {
	_, err := n.Register(addr, s.Handle, cfg)
	return err
}

// Close stops the reaper and expires every remote session.
func (s *Service) Close() {
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		return
	}
	s.stopped = true
	close(s.stop)
	sessions := s.sessions
	s.sessions = make(map[int64]*liveSession)
	s.mu.Unlock()
	for _, ls := range sessions {
		ls.sess.Close()
	}
}

// reap expires sessions that missed their keepalives.
func (s *Service) reap() {
	tick := time.NewTicker(s.ttl / 3)
	defer tick.Stop()
	for {
		select {
		case <-s.stop:
			return
		case now := <-tick.C:
			var doomed []*liveSession
			s.mu.Lock()
			for id, ls := range s.sessions {
				if now.Sub(ls.lastSeen) > s.ttl {
					doomed = append(doomed, ls)
					delete(s.sessions, id)
				}
			}
			s.mu.Unlock()
			for _, ls := range doomed {
				ls.sess.Close()
			}
		}
	}
}

// session resolves an op's session handle, touching its liveness.
func (s *Service) session(id int64) (*Session, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ls, ok := s.sessions[id]
	if !ok {
		return nil, fmt.Errorf("%w: session %d expired", ErrSessionClosed, id)
	}
	ls.lastSeen = time.Now()
	return ls.sess, nil
}

// Handle is the rpc.Handler for the service.
func (s *Service) Handle(ctx context.Context, method string, payload any) (any, error) {
	if method == "connect" {
		s.mu.Lock()
		if s.stopped {
			s.mu.Unlock()
			return nil, ErrSessionClosed
		}
		sess := s.srv.NewSession()
		s.sessions[sess.ID()] = &liveSession{sess: sess, lastSeen: time.Now()}
		s.mu.Unlock()
		return &zkResult{Session: sess.ID()}, nil
	}
	op, ok := payload.(*zkOp)
	if !ok {
		return nil, fmt.Errorf("zk: %s: bad payload %T", method, payload)
	}
	if method == "close" {
		s.mu.Lock()
		ls, ok := s.sessions[op.Session]
		delete(s.sessions, op.Session)
		s.mu.Unlock()
		if ok {
			ls.sess.Close()
		}
		return &zkResult{}, nil
	}
	sess, err := s.session(op.Session)
	if err != nil {
		return nil, err
	}
	switch method {
	case "ping":
		return &zkResult{}, nil
	case "create":
		return &zkResult{}, sess.Create(op.Path, op.Data, op.Flag)
	case "createseq":
		p, err := sess.CreateSequential(op.Path, op.Data, op.Flag)
		return &zkResult{Path: p}, err
	case "get":
		data, stat, err := sess.Get(op.Path)
		return &zkResult{Data: data, Version: stat.Version, Eph: stat.Ephemeral, Owner: stat.Owner}, err
	case "set":
		return &zkResult{}, sess.Set(op.Path, op.Data, op.Version)
	case "delete":
		return &zkResult{}, sess.Delete(op.Path)
	case "exists":
		ok, err := sess.Exists(op.Path)
		return &zkResult{OK: ok}, err
	case "children":
		kids, err := sess.Children(op.Path)
		return &zkResult{Children: kids}, err
	default:
		return nil, fmt.Errorf("zk: unknown method %q", method)
	}
}

// RemoteConfig tunes a RemoteClient.
type RemoteConfig struct {
	// CallTimeout bounds each rpc (default 2s).
	CallTimeout time.Duration
	// KeepAlive is the ping interval (default DefaultSessionTTL/3).
	KeepAlive time.Duration
	// PollInterval paces watch emulation (default 100ms).
	PollInterval time.Duration
}

func (c *RemoteConfig) defaults() {
	if c.CallTimeout <= 0 {
		c.CallTimeout = 2 * time.Second
	}
	if c.KeepAlive <= 0 {
		c.KeepAlive = DefaultSessionTTL / 3
	}
	if c.PollInterval <= 0 {
		c.PollInterval = 100 * time.Millisecond
	}
}

// RemoteClient is a Client whose session lives behind a Service,
// reached over the rpc fabric (in-process or routed across TCP). A
// background keepalive holds the session open; watches are emulated by
// polling, preserving zk's one-shot watch semantics.
type RemoteClient struct {
	net  *rpc.Network
	addr string
	cfg  RemoteConfig
	id   int64

	mu     sync.Mutex
	closed bool
	stop   chan struct{}
	wg     sync.WaitGroup
}

var _ Client = (*RemoteClient)(nil)

// Connect opens a remote session against the Service at addr on net.
func Connect(ctx context.Context, net *rpc.Network, addr string, cfg RemoteConfig) (*RemoteClient, error) {
	cfg.defaults()
	c := &RemoteClient{net: net, addr: addr, cfg: cfg, stop: make(chan struct{})}
	res, err := c.call(ctx, "connect", nil)
	if err != nil {
		return nil, fmt.Errorf("zk: connect %s: %w", addr, err)
	}
	c.id = res.Session
	c.wg.Add(1)
	go c.keepalive()
	return c, nil
}

// ID returns the remote session identifier.
func (c *RemoteClient) ID() int64 { return c.id }

// call issues one rpc with the configured timeout.
func (c *RemoteClient) call(ctx context.Context, method string, op *zkOp) (*zkResult, error) {
	cctx, cancel := context.WithTimeout(ctx, c.cfg.CallTimeout)
	defer cancel()
	var payload any
	if op != nil {
		payload = op
	}
	v, err := c.net.Call(cctx, c.addr, method, payload)
	if err != nil {
		return nil, err
	}
	res, ok := v.(*zkResult)
	if !ok {
		return nil, fmt.Errorf("zk: %s: bad result %T", method, v)
	}
	return res, nil
}

func (c *RemoteClient) op(method string, op *zkOp) (*zkResult, error) {
	c.mu.Lock()
	closed := c.closed
	c.mu.Unlock()
	if closed {
		return nil, ErrSessionClosed
	}
	op.Session = c.id
	return c.call(context.Background(), method, op)
}

func (c *RemoteClient) keepalive() {
	defer c.wg.Done()
	tick := time.NewTicker(c.cfg.KeepAlive)
	defer tick.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-tick.C:
			// Transient failures are fine as long as one ping lands
			// within the TTL; a dead service expires us regardless.
			_, _ = c.call(context.Background(), "ping", &zkOp{Session: c.id})
		}
	}
}

// Create implements Client.
func (c *RemoteClient) Create(p string, data []byte, ephemeral bool) error {
	_, err := c.op("create", &zkOp{Path: p, Data: data, Flag: ephemeral})
	return err
}

// CreateSequential implements Client.
func (c *RemoteClient) CreateSequential(prefix string, data []byte, ephemeral bool) (string, error) {
	res, err := c.op("createseq", &zkOp{Path: prefix, Data: data, Flag: ephemeral})
	if err != nil {
		return "", err
	}
	return res.Path, nil
}

// Get implements Client.
func (c *RemoteClient) Get(p string) ([]byte, Stat, error) {
	res, err := c.op("get", &zkOp{Path: p})
	if err != nil {
		return nil, Stat{}, err
	}
	return res.Data, Stat{Version: res.Version, Ephemeral: res.Eph, Owner: res.Owner}, nil
}

// Set implements Client.
func (c *RemoteClient) Set(p string, data []byte, version int) error {
	_, err := c.op("set", &zkOp{Path: p, Data: data, Version: version})
	return err
}

// Delete implements Client.
func (c *RemoteClient) Delete(p string) error {
	_, err := c.op("delete", &zkOp{Path: p})
	return err
}

// Exists implements Client.
func (c *RemoteClient) Exists(p string) (bool, error) {
	res, err := c.op("exists", &zkOp{Path: p})
	if err != nil {
		return false, err
	}
	return res.OK, nil
}

// Children implements Client.
func (c *RemoteClient) Children(p string) ([]string, error) {
	res, err := c.op("children", &zkOp{Path: p})
	if err != nil {
		return nil, err
	}
	return res.Children, nil
}

// Watch implements Client by polling p's existence and version until
// one change fires the one-shot event.
func (c *RemoteClient) Watch(p string) (<-chan Event, error) {
	existed, version, err := c.snapshot(p)
	if err != nil {
		return nil, err
	}
	ch := make(chan Event, 1)
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrSessionClosed
	}
	c.wg.Add(1)
	c.mu.Unlock()
	go c.pollWatch(p, ch, func() (Event, bool) {
		now, v, err := c.snapshot(p)
		switch {
		case err != nil:
			return Event{}, false
		case existed && !now:
			return Event{Type: EventDeleted, Path: p}, true
		case !existed && now:
			return Event{Type: EventCreated, Path: p}, true
		case existed && v != version:
			return Event{Type: EventDataChanged, Path: p}, true
		}
		return Event{}, false
	})
	return ch, nil
}

// WatchChildren implements Client by polling p's child set.
func (c *RemoteClient) WatchChildren(p string) (<-chan Event, error) {
	before, err := c.Children(p)
	if err != nil {
		return nil, err
	}
	ch := make(chan Event, 1)
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrSessionClosed
	}
	c.wg.Add(1)
	c.mu.Unlock()
	go c.pollWatch(p, ch, func() (Event, bool) {
		now, err := c.Children(p)
		if err != nil {
			if errors.Is(err, ErrNoNode) {
				return Event{Type: EventDeleted, Path: p}, true
			}
			return Event{}, false
		}
		if !sameStrings(before, now) {
			return Event{Type: EventChildrenChanged, Path: p}, true
		}
		return Event{}, false
	})
	return ch, nil
}

// snapshot captures (exists, version) for data-watch comparison.
func (c *RemoteClient) snapshot(p string) (bool, int, error) {
	res, err := c.op("get", &zkOp{Path: p})
	if err != nil {
		if errors.Is(err, ErrNoNode) {
			return false, 0, nil
		}
		return false, 0, err
	}
	return true, res.Version, nil
}

// pollWatch runs one emulated one-shot watch until check fires or the
// client closes.
func (c *RemoteClient) pollWatch(p string, ch chan Event, check func() (Event, bool)) {
	defer c.wg.Done()
	tick := time.NewTicker(c.cfg.PollInterval)
	defer tick.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-tick.C:
			if ev, fire := check(); fire {
				ch <- ev
				return
			}
		}
	}
}

func sameStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Close expires the remote session and stops the keepalive and all
// emulated watches.
func (c *RemoteClient) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	close(c.stop)
	c.mu.Unlock()
	_, _ = c.call(context.Background(), "close", &zkOp{Session: c.id})
	c.wg.Wait()
}
