package zk

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/rpc"
)

// startService wires a Server + Service onto a fresh rpc network.
func startService(t *testing.T, ttl time.Duration) (*rpc.Network, *Server, *Service) {
	t.Helper()
	net := rpc.NewNetwork(0, nil)
	srv := NewServer()
	svc := NewService(srv, ttl)
	if err := svc.Register(net, "zk", rpc.ServerConfig{}); err != nil {
		t.Fatalf("register: %v", err)
	}
	t.Cleanup(func() { svc.Close(); net.Close() })
	return net, srv, svc
}

func remoteCfg() RemoteConfig {
	return RemoteConfig{KeepAlive: 20 * time.Millisecond, PollInterval: 5 * time.Millisecond}
}

func TestRemoteClientBasicOps(t *testing.T) {
	net, _, _ := startService(t, time.Second)
	c, err := Connect(context.Background(), net, "zk", remoteCfg())
	if err != nil {
		t.Fatalf("connect: %v", err)
	}
	defer c.Close()

	if err := c.Create("/a", []byte("one"), false); err != nil {
		t.Fatalf("create: %v", err)
	}
	if err := c.Create("/a", nil, false); !errors.Is(err, ErrNodeExists) {
		t.Fatalf("want ErrNodeExists, got %v", err)
	}
	data, stat, err := c.Get("/a")
	if err != nil || string(data) != "one" || stat.Version != 0 {
		t.Fatalf("get: %q %+v %v", data, stat, err)
	}
	if err := c.Set("/a", []byte("two"), 5); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("want ErrBadVersion, got %v", err)
	}
	if err := c.Set("/a", []byte("two"), 0); err != nil {
		t.Fatalf("set: %v", err)
	}
	p, err := c.CreateSequential("/a/seq-", nil, true)
	if err != nil {
		t.Fatalf("createseq: %v", err)
	}
	kids, err := c.Children("/a")
	if err != nil || len(kids) != 1 {
		t.Fatalf("children: %v %v", kids, err)
	}
	ok, err := c.Exists(p)
	if err != nil || !ok {
		t.Fatalf("exists %s: %v %v", p, ok, err)
	}
	if err := c.Delete(p); err != nil {
		t.Fatalf("delete: %v", err)
	}
	if _, _, err := c.Get(p); !errors.Is(err, ErrNoNode) {
		t.Fatalf("want ErrNoNode, got %v", err)
	}
}

func TestRemoteClientWatches(t *testing.T) {
	net, srv, _ := startService(t, time.Second)
	c, err := Connect(context.Background(), net, "zk", remoteCfg())
	if err != nil {
		t.Fatalf("connect: %v", err)
	}
	defer c.Close()
	local := srv.NewSession()
	defer local.Close()

	if err := local.Create("/w", []byte("v0"), false); err != nil {
		t.Fatal(err)
	}
	dw, err := c.Watch("/w")
	if err != nil {
		t.Fatalf("watch: %v", err)
	}
	cw, err := c.WatchChildren("/w")
	if err != nil {
		t.Fatalf("watchchildren: %v", err)
	}
	if err := local.Set("/w", []byte("v1"), -1); err != nil {
		t.Fatal(err)
	}
	if err := local.Create("/w/kid", nil, false); err != nil {
		t.Fatal(err)
	}
	select {
	case ev := <-dw:
		if ev.Type != EventDataChanged {
			t.Fatalf("data watch fired %v", ev.Type)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("data watch never fired")
	}
	select {
	case ev := <-cw:
		if ev.Type != EventChildrenChanged {
			t.Fatalf("child watch fired %v", ev.Type)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("child watch never fired")
	}
}

// TestRemoteSessionExpiryFailsOverElection is the liveness core: a
// remote candidate that stops pinging loses its ephemerals, promoting
// the next candidate.
func TestRemoteSessionExpiryFailsOverElection(t *testing.T) {
	net, srv, _ := startService(t, 60*time.Millisecond)
	c1, err := Connect(context.Background(), net, "zk", remoteCfg())
	if err != nil {
		t.Fatalf("connect: %v", err)
	}
	e1, err := JoinElection(c1, "/election", "remote-1")
	if err != nil {
		t.Fatalf("join: %v", err)
	}
	local := srv.NewSession()
	defer local.Close()
	e2, err := JoinElection(local, "/election", "local-2")
	if err != nil {
		t.Fatalf("join: %v", err)
	}
	if lead, _ := e1.IsLeader(); !lead {
		t.Fatal("remote candidate should lead")
	}
	if lead, _ := e2.IsLeader(); lead {
		t.Fatal("local candidate should follow")
	}

	// Simulate a SIGKILL: stop the keepalive without a clean close.
	close(c1.stop)
	c1.wg.Wait()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := e2.AwaitLeadership(ctx); err != nil {
		t.Fatalf("follower never promoted: %v", err)
	}
	if leader, err := e2.Leader(); err != nil || leader != "local-2" {
		t.Fatalf("leader=%q err=%v", leader, err)
	}
}

// TestRemoteElectionOverClient exercises the election recipe fully
// through the remote client, including the polling child watch inside
// AwaitLeadership.
func TestRemoteElectionOverClient(t *testing.T) {
	net, _, _ := startService(t, time.Second)
	c1, err := Connect(context.Background(), net, "zk", remoteCfg())
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	c2, err := Connect(context.Background(), net, "zk", remoteCfg())
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()

	e1, err := JoinElection(c1, "/el2", "a")
	if err != nil {
		t.Fatal(err)
	}
	e2, err := JoinElection(c2, "/el2", "b")
	if err != nil {
		t.Fatal(err)
	}
	promoted := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		promoted <- e2.AwaitLeadership(ctx)
	}()
	time.Sleep(20 * time.Millisecond)
	if err := e1.Resign(); err != nil {
		t.Fatalf("resign: %v", err)
	}
	if err := <-promoted; err != nil {
		t.Fatalf("await: %v", err)
	}
}
