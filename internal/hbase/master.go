package hbase

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"sync"

	"repro/internal/rpc"
	"repro/internal/zk"
)

// ErrNotActive is returned by a standby master.
var ErrNotActive = errors.New("hbase: master not active")

// ErrNoServers means no live region server can take an assignment.
var ErrNoServers = errors.New("hbase: no live region servers")

// regionsZKPath is where the region map is published (source of truth
// shared by the active master and its backup).
const regionsZKPath = "/hbase/regions"

// Master is an HMaster candidate: it campaigns for leadership through
// ZooKeeper, and while active it owns region assignment, splits and
// crash recovery.
type Master struct {
	name string
	clu  *Cluster
	sess *zk.Session
	elec *zk.Election

	mu      sync.Mutex
	regions map[int]*RegionInfo
	nextID  int
	cursor  int // round-robin assignment cursor

	// recMu serialises reconcile passes (monitor vs RPC handler).
	recMu sync.Mutex

	stopCh chan struct{}
	doneCh chan struct{}
}

// masterAddr returns a master's RPC address.
func masterAddr(name string) string { return "master/" + name }

// startMaster joins the election and starts the monitoring loop.
func startMaster(name string, clu *Cluster) (*Master, error) {
	m := &Master{
		name:    name,
		clu:     clu,
		sess:    clu.zks.NewSession(),
		regions: make(map[int]*RegionInfo),
		stopCh:  make(chan struct{}),
		doneCh:  make(chan struct{}),
	}
	if err := zk.EnsurePath(m.sess, regionsZKPath); err != nil {
		return nil, err
	}
	if err := zk.EnsurePath(m.sess, "/hbase/rs"); err != nil {
		return nil, err
	}
	elec, err := zk.JoinElection(m.sess, "/hbase/master-election", name)
	if err != nil {
		return nil, err
	}
	m.elec = elec
	if _, err := clu.net.Register(masterAddr(name), m.handle, rpc.ServerConfig{QueueCap: 1024, Workers: 4}); err != nil {
		return nil, err
	}
	go m.monitor()
	return m, nil
}

// Name returns the master's name.
func (m *Master) Name() string { return m.name }

// IsActive reports whether this master currently leads.
func (m *Master) IsActive() bool {
	lead, err := m.elec.IsLeader()
	return err == nil && lead
}

// stop terminates the monitor loop.
func (m *Master) stop() {
	select {
	case <-m.stopCh:
	default:
		close(m.stopCh)
	}
	<-m.doneCh
	m.sess.Close()
}

// monitor watches region-server membership while active, reconciling
// assignments when servers die. A standby wakes when leadership
// changes hands.
func (m *Master) monitor() {
	defer close(m.doneCh)
	for {
		select {
		case <-m.stopCh:
			return
		default:
		}
		if m.IsActive() {
			m.loadStateFromZK()
			m.reconcile()
			ch, err := m.sess.WatchChildren("/hbase/rs")
			if err != nil {
				return // session closed
			}
			select {
			case <-ch:
				continue
			case <-m.stopCh:
				return
			}
		}
		// Standby: wait for the election to change.
		ch, err := m.elec.WatchLeadership()
		if err != nil {
			return
		}
		select {
		case <-ch:
			continue
		case <-m.stopCh:
			return
		}
	}
}

// loadStateFromZK hydrates the region map from the shared namespace
// (no-op for the master that wrote it; essential for a promoted
// backup).
func (m *Master) loadStateFromZK() {
	kids, err := m.sess.Children(regionsZKPath)
	if err != nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, kid := range kids {
		id, err := strconv.Atoi(kid)
		if err != nil {
			continue
		}
		if _, ok := m.regions[id]; ok {
			continue
		}
		data, _, err := m.sess.Get(regionsZKPath + "/" + kid)
		if err != nil {
			continue
		}
		var ri RegionInfo
		if json.Unmarshal(data, &ri) == nil {
			m.regions[id] = &ri
			if id >= m.nextID {
				m.nextID = id + 1
			}
		}
	}
}

// publishLocked writes one region's info to ZooKeeper.
func (m *Master) publishLocked(ri *RegionInfo) error {
	data, err := json.Marshal(ri)
	if err != nil {
		return err
	}
	p := regionsZKPath + "/" + strconv.Itoa(ri.ID)
	if ok, _ := m.sess.Exists(p); ok {
		return m.sess.Set(p, data, -1)
	}
	return m.sess.Create(p, data, false)
}

// unpublishLocked removes a region from ZooKeeper (after a split).
func (m *Master) unpublishLocked(id int) {
	_ = m.sess.Delete(regionsZKPath + "/" + strconv.Itoa(id))
}

// liveServers returns the registered (live) region server names, sorted.
func (m *Master) liveServers() []string {
	kids, err := m.sess.Children("/hbase/rs")
	if err != nil {
		return nil
	}
	sort.Strings(kids)
	return kids
}

// pickServerLocked round-robins over live servers.
func (m *Master) pickServerLocked(live []string) (string, error) {
	if len(live) == 0 {
		return "", ErrNoServers
	}
	s := live[m.cursor%len(live)]
	m.cursor++
	return s, nil
}

// reconcile reassigns regions whose server is no longer live, replaying
// the dead server's WAL into the new assignments (the §III-B crash
// recovery path). Passes are serialised: the monitor goroutine and the
// RPC "reconcile" handler both call in, and interleaved passes would
// double-assign the same orphans.
func (m *Master) reconcile() {
	m.recMu.Lock()
	defer m.recMu.Unlock()
	live := m.liveServers()
	liveSet := make(map[string]bool, len(live))
	for _, s := range live {
		liveSet[s] = true
	}
	// Snapshot the orphan's owner under the lock — assignRegion mutates
	// Server concurrently with other masters' RPCs.
	type orphan struct {
		ri   *RegionInfo
		prev string
	}
	m.mu.Lock()
	var orphans []orphan
	for _, ri := range m.regions {
		if ri.Server != "" && !liveSet[ri.Server] {
			orphans = append(orphans, orphan{ri: ri, prev: ri.Server})
		}
	}
	sort.Slice(orphans, func(i, j int) bool { return orphans[i].ri.ID < orphans[j].ri.ID })
	m.mu.Unlock()

	deadServers := make(map[string]bool)
	for _, o := range orphans {
		deadServers[o.prev] = true
		if err := m.assignRegion(o.ri, live, o.prev); err != nil {
			// Leave it orphaned; the next membership event retries.
			continue
		}
	}
	for dead, ok := range deadServers {
		if !ok {
			continue
		}
		// Drop the recovered WAL only if nothing still points at the
		// dead server.
		m.mu.Lock()
		stillOwns := false
		for _, ri := range m.regions {
			if ri.Server == dead {
				stillOwns = true
				break
			}
		}
		m.mu.Unlock()
		if !stillOwns {
			m.clu.wal.Drop(dead)
		}
	}
}

// assignRegion opens ri on a live server, replaying the previous
// owner's WAL when there was one.
func (m *Master) assignRegion(ri *RegionInfo, live []string, prevOwner string) error {
	var replay []walEntry
	if prevOwner != "" {
		replay = m.clu.wal.EntriesFor(prevOwner, ri.ID, 0)
	}
	m.mu.Lock()
	target, err := m.pickServerLocked(live)
	info := *ri // snapshot: Server is mutated under mu by concurrent assigns
	m.mu.Unlock()
	if err != nil {
		return err
	}
	req := &OpenRequest{Info: info, Replay: replay}
	if _, err := m.clu.net.Call(context.Background(), rsAddr(target), "open", req); err != nil {
		return fmt.Errorf("hbase: open region %d on %s: %w", ri.ID, target, err)
	}
	m.mu.Lock()
	ri.Server = target
	err = m.publishLocked(ri)
	m.mu.Unlock()
	return err
}

// CreateTable lays out the key space into len(splitKeys)+1 regions and
// assigns them round-robin — the paper's manual pre-split ("HBase
// regions were manually split to ensure each region handled an equal
// proportion of the writes").
func (m *Master) CreateTable(splitKeys [][]byte) error {
	if !m.IsActive() {
		return ErrNotActive
	}
	sorted := make([][]byte, len(splitKeys))
	copy(sorted, splitKeys)
	sort.Slice(sorted, func(i, j int) bool { return string(sorted[i]) < string(sorted[j]) })
	live := m.liveServers()
	if len(live) == 0 {
		return ErrNoServers
	}
	bounds := make([][]byte, 0, len(sorted)+2)
	bounds = append(bounds, nil)
	bounds = append(bounds, sorted...)
	bounds = append(bounds, nil)
	for i := 0; i+1 < len(bounds); i++ {
		m.mu.Lock()
		ri := &RegionInfo{ID: m.nextID, Start: bounds[i], End: bounds[i+1]}
		m.nextID++
		m.regions[ri.ID] = ri
		m.mu.Unlock()
		if err := m.assignRegion(ri, live, ""); err != nil {
			return err
		}
	}
	return nil
}

// Regions returns a snapshot of the region map sorted by start key.
func (m *Master) Regions() []RegionInfo {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]RegionInfo, 0, len(m.regions))
	for _, ri := range m.regions {
		out = append(out, *ri)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if len(a.Start) == 0 {
			return len(b.Start) != 0
		}
		if len(b.Start) == 0 {
			return false
		}
		return string(a.Start) < string(b.Start)
	})
	return out
}

// Split divides a region at splitKey: the parent is flushed and closed,
// its data rewritten into two children, and both are assigned.
func (m *Master) Split(regionID int, splitKey []byte) error {
	if !m.IsActive() {
		return ErrNotActive
	}
	m.mu.Lock()
	parent, ok := m.regions[regionID]
	if !ok {
		m.mu.Unlock()
		return fmt.Errorf("hbase: split: unknown region %d", regionID)
	}
	p := *parent
	m.mu.Unlock()
	if !p.Contains(splitKey) {
		return fmt.Errorf("hbase: split key outside region %d range", regionID)
	}
	// Flush & close the parent on its server.
	if p.Server != "" {
		if _, err := m.clu.net.Call(context.Background(), rsAddr(p.Server), "close", &CloseRequest{Region: p.ID}); err != nil && !errors.Is(err, ErrWrongRegion) {
			return fmt.Errorf("hbase: split close: %w", err)
		}
	}
	// Read the parent's flushed data and rewrite into children.
	parentRegion, _, err := openRegion(p, m.clu.dfs)
	if err != nil {
		return err
	}
	cells := parentRegion.scan(nil, nil, 0)
	live := m.liveServers()
	m.mu.Lock()
	left := &RegionInfo{ID: m.nextID, Start: p.Start, End: splitKey}
	right := &RegionInfo{ID: m.nextID + 1, Start: splitKey, End: p.End}
	m.nextID += 2
	m.mu.Unlock()

	if err := m.seedRegion(left, cells); err != nil {
		return err
	}
	if err := m.seedRegion(right, cells); err != nil {
		return err
	}
	if err := m.assignRegion(left, live, ""); err != nil {
		return err
	}
	if err := m.assignRegion(right, live, ""); err != nil {
		return err
	}
	m.mu.Lock()
	m.regions[left.ID] = left
	m.regions[right.ID] = right
	delete(m.regions, p.ID)
	m.unpublishLocked(p.ID)
	m.mu.Unlock()
	// Remove the parent's files.
	for _, f := range m.clu.dfs.ListFiles(p.dir()) {
		_ = m.clu.dfs.DeleteFile(f)
	}
	return nil
}

// seedRegion writes the subset of cells belonging to ri as its first
// store file.
func (m *Master) seedRegion(ri *RegionInfo, cells []Cell) error {
	var mine []Cell
	for _, c := range cells {
		if ri.Contains(c.Row) {
			mine = append(mine, c)
		}
	}
	if len(mine) == 0 {
		return nil
	}
	r := newRegion(*ri)
	r.put(mine, 1)
	_, err := r.flush(m.clu.dfs)
	return err
}

// handle serves the master's RPC surface (used by clients).
func (m *Master) handle(_ context.Context, method string, payload any) (any, error) {
	switch method {
	case "regions":
		if !m.IsActive() {
			return nil, ErrNotActive
		}
		m.loadStateFromZK()
		return m.Regions(), nil
	case "reconcile":
		if !m.IsActive() {
			return nil, ErrNotActive
		}
		m.reconcile()
		return nil, nil
	default:
		return nil, fmt.Errorf("hbase: master %s: unknown method %q", m.name, method)
	}
}
