package hbase

import (
	"fmt"
	"testing"
)

func TestRebalanceAfterScaleOut(t *testing.T) {
	c := newTestCluster(t, Config{RegionServers: 2})
	if err := c.CreateTable(byteSplits(6)); err != nil {
		t.Fatal(err)
	}
	cl := c.NewClient(ClientConfig{})
	var cells []Cell
	for i := 0; i < 120; i++ {
		cells = append(cells, Cell{Row: []byte{byte(i * 2)}, Qual: []byte{byte(i)}, Value: []byte("v")})
	}
	if err := cl.Put(cells); err != nil {
		t.Fatal(err)
	}
	// Scale out: the new server owns nothing yet.
	if _, err := c.AddRegionServer(); err != nil {
		t.Fatal(err)
	}
	m, err := c.ActiveMaster()
	if err != nil {
		t.Fatal(err)
	}
	counts := func() map[string]int {
		out := map[string]int{}
		for _, ri := range m.Regions() {
			out[ri.Server]++
		}
		return out
	}
	if counts()["rs-3"] != 0 {
		t.Fatal("new server unexpectedly owns regions before rebalance")
	}
	moved, err := m.Rebalance()
	if err != nil {
		t.Fatal(err)
	}
	if moved == 0 {
		t.Fatal("rebalance moved nothing")
	}
	after := counts()
	for s, n := range after {
		if n != 2 {
			t.Fatalf("server %s owns %d regions after rebalance, want 2 (%v)", s, n, after)
		}
	}
	// No data lost through the flush+close+open moves.
	got, err := cl.Scan(nil, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 120 {
		t.Fatalf("scan after rebalance = %d cells, want 120", len(got))
	}
	// Idempotent once balanced.
	moved, err = m.Rebalance()
	if err != nil || moved != 0 {
		t.Fatalf("second rebalance moved %d, %v", moved, err)
	}
}

func TestRebalanceRequiresActiveMaster(t *testing.T) {
	c := newTestCluster(t, Config{RegionServers: 2})
	var standby *Master
	for _, m := range c.masters {
		if !m.IsActive() {
			standby = m
		}
	}
	if standby == nil {
		t.Fatal("no standby master")
	}
	if _, err := standby.Rebalance(); err != ErrNotActive {
		t.Fatalf("err = %v, want ErrNotActive", err)
	}
}

func TestRebalanceManyRegionsManyServers(t *testing.T) {
	c := newTestCluster(t, Config{RegionServers: 2})
	if err := c.CreateTable(byteSplits(12)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := c.AddRegionServer(); err != nil {
			t.Fatal(err)
		}
	}
	m, _ := c.ActiveMaster()
	if _, err := m.Rebalance(); err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, ri := range m.Regions() {
		counts[ri.Server]++
	}
	if len(counts) != 4 {
		t.Fatalf("regions on %d servers, want 4: %v", len(counts), counts)
	}
	for s, n := range counts {
		if n != 3 {
			t.Fatalf("server %s owns %d, want 3 (%v)", s, n, counts)
		}
	}
}

func TestScaleOutThenIngestUsesNewServer(t *testing.T) {
	// The full ongoing-work path: grow the cluster, rebalance, keep
	// ingesting — the new server takes real write traffic.
	c := newTestCluster(t, Config{RegionServers: 2})
	if err := c.CreateTable(byteSplits(6)); err != nil {
		t.Fatal(err)
	}
	cl := c.NewClient(ClientConfig{})
	put := func(base int) {
		var cells []Cell
		for i := 0; i < 128; i++ {
			cells = append(cells, Cell{Row: []byte{byte(i * 2)}, Qual: []byte(fmt.Sprint(base + i)), Value: []byte("v")})
		}
		if err := cl.Put(cells); err != nil {
			t.Fatal(err)
		}
	}
	put(0)
	rs3, err := c.AddRegionServer()
	if err != nil {
		t.Fatal(err)
	}
	m, _ := c.ActiveMaster()
	if _, err := m.Rebalance(); err != nil {
		t.Fatal(err)
	}
	put(1000)
	if rs3.CellsWritten.Value() == 0 {
		t.Fatal("new server received no writes after rebalance")
	}
}
