package hbase

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/hdfs"
)

func cell(row, qual, val string) Cell {
	return Cell{Row: []byte(row), Qual: []byte(qual), Value: []byte(val)}
}

func TestCellOrderingAndEquality(t *testing.T) {
	a := cell("a", "1", "x")
	b := cell("a", "2", "x")
	c := cell("b", "0", "x")
	if !a.Less(b) || !b.Less(c) || c.Less(a) {
		t.Fatal("cell ordering wrong")
	}
	if !a.Same(cell("a", "1", "different")) {
		t.Fatal("Same must ignore value")
	}
	if a.Same(b) {
		t.Fatal("Same must compare qualifiers")
	}
}

func TestSlotKeyUnambiguous(t *testing.T) {
	// Classic ambiguity: row "a" + qual "bc" vs row "ab" + qual "c".
	if slotKey([]byte("a"), []byte("bc")) == slotKey([]byte("ab"), []byte("c")) {
		t.Fatal("slotKey must disambiguate row/qual boundaries")
	}
}

func TestEncodeDecodeCellsRoundTrip(t *testing.T) {
	f := func(rows [][3][]byte) bool {
		cells := make([]Cell, len(rows))
		for i, r := range rows {
			cells[i] = Cell{Row: r[0], Qual: r[1], Value: r[2]}
		}
		out, err := decodeCells(encodeCells(cells))
		if err != nil {
			return false
		}
		if len(out) != len(cells) {
			return false
		}
		for i := range cells {
			if !bytes.Equal(out[i].Row, cells[i].Row) ||
				!bytes.Equal(out[i].Qual, cells[i].Qual) ||
				!bytes.Equal(out[i].Value, cells[i].Value) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeCorrupt(t *testing.T) {
	if _, err := decodeCells([]byte{1, 2}); err == nil {
		t.Fatal("short input must fail")
	}
	good := encodeCells([]Cell{cell("r", "q", "v")})
	if _, err := decodeCells(append(good, 0xFF)); err == nil {
		t.Fatal("trailing bytes must fail")
	}
	if _, err := decodeCells(good[:len(good)-1]); err == nil {
		t.Fatal("truncated input must fail")
	}
}

func TestInRange(t *testing.T) {
	if !inRange([]byte("m"), nil, nil) {
		t.Fatal("open range contains everything")
	}
	if !inRange([]byte("m"), []byte("m"), []byte("n")) {
		t.Fatal("start is inclusive")
	}
	if inRange([]byte("n"), []byte("m"), []byte("n")) {
		t.Fatal("end is exclusive")
	}
	if inRange([]byte("a"), []byte("m"), nil) {
		t.Fatal("below start must be out")
	}
}

func TestRegionPutScanShadowing(t *testing.T) {
	r := newRegion(RegionInfo{ID: 1})
	r.put([]Cell{cell("r1", "q1", "old")}, 1)
	r.put([]Cell{cell("r1", "q1", "new"), cell("r2", "q1", "x")}, 2)
	got := r.scan(nil, nil, 0)
	if len(got) != 2 {
		t.Fatalf("scan = %d cells, want 2", len(got))
	}
	if string(got[0].Value) != "new" {
		t.Fatal("memstore must keep the newest version")
	}
	// Range scan.
	got = r.scan([]byte("r2"), nil, 0)
	if len(got) != 1 || string(got[0].Row) != "r2" {
		t.Fatalf("range scan wrong: %v", got)
	}
	// Limit.
	got = r.scan(nil, nil, 1)
	if len(got) != 1 {
		t.Fatal("limit ignored")
	}
}

func TestRegionFlushAndReopen(t *testing.T) {
	dfs := hdfs.NewCluster(3)
	r := newRegion(RegionInfo{ID: 7})
	r.put([]Cell{cell("a", "1", "v1"), cell("b", "1", "v2")}, 5)
	seq, err := r.flush(dfs)
	if err != nil {
		t.Fatal(err)
	}
	if seq != 5 {
		t.Fatalf("flushed seq = %d, want 5", seq)
	}
	if r.memSize() != 0 {
		t.Fatal("flush must clear the memstore")
	}
	// Scan still sees flushed data.
	if got := r.scan(nil, nil, 0); len(got) != 2 {
		t.Fatalf("scan after flush = %d cells", len(got))
	}
	// Reopen from HDFS (what a failover assignment does).
	r2, flushedSeq, err := openRegion(RegionInfo{ID: 7}, dfs)
	if err != nil {
		t.Fatal(err)
	}
	if flushedSeq != 5 {
		t.Fatalf("reopened flushedSeq = %d", flushedSeq)
	}
	got := r2.scan(nil, nil, 0)
	if len(got) != 2 || string(got[0].Value) != "v1" {
		t.Fatalf("reopened scan = %v", got)
	}
}

func TestRegionFlushEmptyIsNoop(t *testing.T) {
	dfs := hdfs.NewCluster(2)
	r := newRegion(RegionInfo{ID: 1})
	seq, err := r.flush(dfs)
	if err != nil || seq != 0 {
		t.Fatalf("empty flush = %d, %v", seq, err)
	}
}

func TestRegionMultipleFlushesNewestWins(t *testing.T) {
	dfs := hdfs.NewCluster(2)
	r := newRegion(RegionInfo{ID: 2})
	r.put([]Cell{cell("k", "q", "v1")}, 1)
	if _, err := r.flush(dfs); err != nil {
		t.Fatal(err)
	}
	r.put([]Cell{cell("k", "q", "v2")}, 2)
	if _, err := r.flush(dfs); err != nil {
		t.Fatal(err)
	}
	got := r.scan(nil, nil, 0)
	if len(got) != 1 || string(got[0].Value) != "v2" {
		t.Fatalf("scan = %v, want newest", got)
	}
	// Reopen must also pick the newest.
	r2, _, err := openRegion(RegionInfo{ID: 2}, dfs)
	if err != nil {
		t.Fatal(err)
	}
	got = r2.scan(nil, nil, 0)
	if len(got) != 1 || string(got[0].Value) != "v2" {
		t.Fatalf("reopened scan = %v", got)
	}
}

func TestRegionCompaction(t *testing.T) {
	dfs := hdfs.NewCluster(2)
	r := newRegion(RegionInfo{ID: 3})
	for i := 0; i < 4; i++ {
		r.put([]Cell{cell("k", "q", fmt.Sprintf("v%d", i)), cell(fmt.Sprintf("k%d", i), "q", "x")}, int64(i+1))
		if _, err := r.flush(dfs); err != nil {
			t.Fatal(err)
		}
	}
	if len(r.files) != 4 {
		t.Fatalf("files = %d, want 4", len(r.files))
	}
	n, err := r.compact(dfs)
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 || len(r.files) != 1 {
		t.Fatalf("compacted %d files into %d", n, len(r.files))
	}
	got := r.scan([]byte("k"), []byte("k\x00"), 0) // just row "k"
	if len(got) != 1 || string(got[0].Value) != "v3" {
		t.Fatalf("post-compaction scan = %v", got)
	}
	// All rows intact.
	if got := r.scan(nil, nil, 0); len(got) != 5 {
		t.Fatalf("post-compaction total = %d, want 5", len(got))
	}
	// Old files removed from HDFS (1 data file + marker remain).
	files := dfs.ListFiles(regionDir(3))
	if len(files) != 2 {
		t.Fatalf("HDFS files after compaction = %v", files)
	}
	// Compacting a single file is a no-op.
	if n, err := r.compact(dfs); err != nil || n != 0 {
		t.Fatalf("re-compaction = %d, %v", n, err)
	}
	// Reopen after compaction.
	r2, _, err := openRegion(RegionInfo{ID: 3}, dfs)
	if err != nil {
		t.Fatal(err)
	}
	if got := r2.scan(nil, nil, 0); len(got) != 5 {
		t.Fatalf("reopen after compaction = %d cells", len(got))
	}
}

func TestWALStore(t *testing.T) {
	w := newWALStore()
	w.Append("rs-1", []walEntry{
		{Region: 1, Seq: 1, Cell: cell("a", "q", "1")},
		{Region: 2, Seq: 2, Cell: cell("b", "q", "2")},
		{Region: 1, Seq: 3, Cell: cell("c", "q", "3")},
	})
	if got := w.EntriesFor("rs-1", 1, 0); len(got) != 2 {
		t.Fatalf("region 1 entries = %d", len(got))
	}
	if got := w.EntriesFor("rs-1", 1, 1); len(got) != 1 || got[0].Seq != 3 {
		t.Fatalf("afterSeq filter wrong: %v", got)
	}
	w.Truncate("rs-1", 1, 1)
	if got := w.EntriesFor("rs-1", 1, 0); len(got) != 1 {
		t.Fatalf("after truncate = %d", len(got))
	}
	if w.Len("rs-1") != 2 {
		t.Fatalf("total after truncate = %d", w.Len("rs-1"))
	}
	w.Drop("rs-1")
	if w.Len("rs-1") != 0 {
		t.Fatal("Drop must clear the log")
	}
}
