package hbase

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/clock"
	"repro/internal/rpc"
	"repro/internal/telemetry"
	"repro/internal/zk"
)

// Errors surfaced by region servers.
var (
	ErrWrongRegion   = errors.New("hbase: region not served here")
	ErrKeyOutOfRange = errors.New("hbase: key outside region range")
)

// RPC payload types exchanged with region servers.
type (
	// PutRequest writes cells into one region.
	PutRequest struct {
		Region int
		Cells  []Cell
	}
	// ScanRequest reads a key range from one region.
	ScanRequest struct {
		Region     int
		Start, End []byte
		Limit      int
	}
	// ScanResponse carries the matching cells.
	ScanResponse struct {
		Cells []Cell
	}
	// OpenRequest assigns a region to the server, optionally replaying
	// WAL entries recovered from a dead server.
	OpenRequest struct {
		Info   RegionInfo
		Replay []walEntry
	}
	// DeleteRequest tombstones the (Row, Qual) slots of its cells.
	DeleteRequest struct {
		Region int
		Cells  []Cell
	}
	// CloseRequest flushes and unloads a region (used for splits).
	CloseRequest struct {
		Region int
	}
	// FlushRequest forces a memstore flush.
	FlushRequest struct {
		Region int
	}
	// CompactRequest merges a region's store files.
	CompactRequest struct {
		Region int
	}
)

// RegionServer hosts a set of regions and serves put/scan RPCs.
type RegionServer struct {
	name string
	clu  *Cluster

	mu      sync.RWMutex
	regions map[int]*region

	seq    atomic.Int64
	zsess  *zk.Session
	server *rpc.Server
	bucket *clock.TokenBucket

	// CellsWritten counts cells accepted by put RPCs — the "samples
	// ingested" measure behind Figure 2.
	CellsWritten telemetry.Counter
	// Scans counts scan RPCs served.
	Scans telemetry.Counter
	// Flushes counts memstore flushes.
	Flushes telemetry.Counter
}

// rsAddr returns the RPC address for a region server name.
func rsAddr(name string) string { return "rs/" + name }

// livenessPath returns the server's ephemeral znode path.
func livenessPath(name string) string { return "/hbase/rs/" + name }

// startRegionServer registers the server on the network and its
// liveness znode in ZooKeeper.
func startRegionServer(name string, clu *Cluster) (*RegionServer, error) {
	rs := &RegionServer{
		name:    name,
		clu:     clu,
		regions: make(map[int]*region),
		zsess:   clu.zks.NewSession(),
		bucket:  clock.NewTokenBucket(clu.cfg.ServiceRatePerRS, clu.cfg.serviceBurst(), clu.cfg.Clock),
	}
	if err := zk.EnsurePath(rs.zsess, "/hbase/rs"); err != nil {
		return nil, err
	}
	if err := rs.zsess.Create(livenessPath(name), []byte(name), true); err != nil {
		return nil, fmt.Errorf("hbase: register %s liveness: %w", name, err)
	}
	srv, err := clu.net.Register(rsAddr(name), rs.handle, rpc.ServerConfig{
		QueueCap:        clu.cfg.RSQueueCap,
		Workers:         clu.cfg.RSWorkers,
		CrashOnOverflow: clu.cfg.CrashOnOverflow,
		OnCrash:         rs.onCrash,
	})
	if err != nil {
		return nil, err
	}
	rs.server = srv
	return rs, nil
}

// Name returns the server's name.
func (rs *RegionServer) Name() string { return rs.name }

// Crashed reports whether the server is down.
func (rs *RegionServer) Crashed() bool { return rs.server.Crashed() }

// RPCStats exposes the underlying queue counters.
func (rs *RegionServer) RPCStats() (handled, overflows int64) {
	return rs.server.Handled.Value(), rs.server.Overflows.Value()
}

// onCrash drops the liveness lease so the master notices.
func (rs *RegionServer) onCrash() {
	rs.zsess.Close()
}

// crash kills the server (failure injection / overflow path).
func (rs *RegionServer) crash() { rs.server.Crash() }

// regionIDs returns the hosted region ids.
func (rs *RegionServer) regionIDs() []int {
	rs.mu.RLock()
	defer rs.mu.RUnlock()
	ids := make([]int, 0, len(rs.regions))
	for id := range rs.regions {
		ids = append(ids, id)
	}
	return ids
}

// handle is the RPC dispatch. The fabric threads the caller's context
// through (and rejects calls whose deadline lapsed while queued);
// region ops themselves are local, in-memory and short, so once a
// handler starts it runs to completion without consulting ctx.
func (rs *RegionServer) handle(_ context.Context, method string, payload any) (any, error) {
	switch method {
	case "put":
		return nil, rs.handlePut(payload.(*PutRequest))
	case "delete":
		del := payload.(*DeleteRequest)
		cells := make([]Cell, len(del.Cells))
		for i, c := range del.Cells {
			cc := c.clone()
			cc.Tomb = true
			cc.Value = nil
			cells[i] = cc
		}
		return nil, rs.handlePut(&PutRequest{Region: del.Region, Cells: cells})
	case "scan":
		return rs.handleScan(payload.(*ScanRequest))
	case "open":
		return nil, rs.handleOpen(payload.(*OpenRequest))
	case "close":
		return nil, rs.handleClose(payload.(*CloseRequest))
	case "flush":
		return nil, rs.handleFlush(payload.(*FlushRequest))
	case "compact":
		return nil, rs.handleCompact(payload.(*CompactRequest))
	default:
		return nil, fmt.Errorf("hbase: %s: unknown method %q", rs.name, method)
	}
}

func (rs *RegionServer) lookup(id int) (*region, error) {
	rs.mu.RLock()
	defer rs.mu.RUnlock()
	r, ok := rs.regions[id]
	if !ok {
		return nil, fmt.Errorf("%w: region %d on %s", ErrWrongRegion, id, rs.name)
	}
	return r, nil
}

func (rs *RegionServer) handlePut(req *PutRequest) error {
	r, err := rs.lookup(req.Region)
	if err != nil {
		return err
	}
	for _, c := range req.Cells {
		if !r.info.Contains(c.Row) {
			return fmt.Errorf("%w: region %d", ErrKeyOutOfRange, req.Region)
		}
	}
	// Emulated per-node service cost: one token per cell. This is what
	// gives the cluster a calibrated per-node throughput ceiling.
	rs.bucket.Take(float64(len(req.Cells)))
	// WAL first (durability), then memstore.
	seq := rs.seq.Add(1)
	entries := make([]walEntry, len(req.Cells))
	for i, c := range req.Cells {
		entries[i] = walEntry{Region: req.Region, Seq: seq, Cell: c.clone()}
	}
	rs.clu.wal.Append(rs.name, entries)
	r.put(req.Cells, seq)
	rs.CellsWritten.Add(int64(len(req.Cells)))
	if th := rs.clu.cfg.FlushThresholdBytes; th > 0 && r.memSize() > th {
		if err := rs.flushRegion(r); err != nil {
			return err
		}
	}
	return nil
}

func (rs *RegionServer) handleScan(req *ScanRequest) (*ScanResponse, error) {
	r, err := rs.lookup(req.Region)
	if err != nil {
		return nil, err
	}
	rs.Scans.Inc()
	return &ScanResponse{Cells: r.scan(req.Start, req.End, req.Limit)}, nil
}

func (rs *RegionServer) handleOpen(req *OpenRequest) error {
	info := req.Info
	info.Server = rs.name
	r, flushedSeq, err := openRegion(info, rs.clu.dfs)
	if err != nil {
		return err
	}
	// Replay recovered WAL entries newer than the flush marker, writing
	// them into this server's own WAL for durability.
	for _, e := range req.Replay {
		if e.Seq <= flushedSeq {
			continue
		}
		seq := rs.seq.Add(1)
		rs.clu.wal.Append(rs.name, []walEntry{{Region: info.ID, Seq: seq, Cell: e.Cell}})
		r.put([]Cell{e.Cell}, seq)
	}
	rs.mu.Lock()
	rs.regions[info.ID] = r
	rs.mu.Unlock()
	return nil
}

func (rs *RegionServer) handleClose(req *CloseRequest) error {
	rs.mu.Lock()
	r, ok := rs.regions[req.Region]
	if ok {
		delete(rs.regions, req.Region)
	}
	rs.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: region %d on %s", ErrWrongRegion, req.Region, rs.name)
	}
	return rs.flushRegion(r)
}

func (rs *RegionServer) handleFlush(req *FlushRequest) error {
	r, err := rs.lookup(req.Region)
	if err != nil {
		return err
	}
	return rs.flushRegion(r)
}

func (rs *RegionServer) flushRegion(r *region) error {
	seq, err := r.flush(rs.clu.dfs)
	if err != nil {
		return err
	}
	if seq > 0 {
		rs.Flushes.Inc()
		rs.clu.wal.Truncate(rs.name, r.info.ID, seq)
	}
	return nil
}

func (rs *RegionServer) handleCompact(req *CompactRequest) error {
	r, err := rs.lookup(req.Region)
	if err != nil {
		return err
	}
	_, err = r.compact(rs.clu.dfs)
	return err
}
