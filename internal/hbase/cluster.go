package hbase

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/clock"
	"repro/internal/hdfs"
	"repro/internal/rpc"
	"repro/internal/zk"
)

// Config sizes a simulated HBase deployment. The defaults mirror the
// paper's topology scaled to in-process: one active master, one backup
// master, N region servers each co-located with an HDFS datanode.
type Config struct {
	// RegionServers is the initial server count (default 3).
	RegionServers int
	// RSQueueCap bounds each region server's RPC queue (default 256).
	RSQueueCap int
	// RSWorkers is each region server's RPC handler pool (default 4).
	RSWorkers int
	// CrashOnOverflow, when > 0, crashes a region server after that
	// many queue overflows (the §III-B failure mode). Zero disables.
	CrashOnOverflow int64
	// FlushThresholdBytes auto-flushes a memstore beyond this size
	// (default 8 MiB; 0 keeps the default, use -1 to disable).
	FlushThresholdBytes int
	// ServiceRatePerRS emulates the per-node throughput ceiling in
	// cells/second (0 = unlimited). Figure 2 benchmarks calibrate this
	// to the paper's ~13k samples/s/node hardware.
	ServiceRatePerRS float64
	// NetLatency is the simulated per-RPC latency (default 0).
	NetLatency time.Duration
	// Clock drives rate emulation and latency (default real clock).
	Clock clock.Clock
	// Replication is the HDFS replication factor (default 3).
	Replication int
}

func (c Config) withDefaults() Config {
	if c.RegionServers <= 0 {
		c.RegionServers = 3
	}
	if c.RSQueueCap <= 0 {
		c.RSQueueCap = 256
	}
	if c.RSWorkers <= 0 {
		c.RSWorkers = 4
	}
	if c.FlushThresholdBytes == 0 {
		c.FlushThresholdBytes = 8 << 20
	}
	if c.Clock == nil {
		c.Clock = clock.Real{}
	}
	if c.Replication <= 0 {
		c.Replication = 3
	}
	return c
}

// serviceBurst sizes the token bucket burst: one tenth of a second of
// service, floored so small rates still make progress.
func (c Config) serviceBurst() float64 {
	b := c.ServiceRatePerRS / 10
	if b < 64 {
		b = 64
	}
	return b
}

// Cluster owns the whole simulated deployment: ZooKeeper, HDFS, both
// masters, the region servers and the shared network.
type Cluster struct {
	cfg Config
	net *rpc.Network
	zks *zk.Server
	dfs *hdfs.Cluster
	wal *walStore

	mu      sync.Mutex
	masters []*Master
	servers map[string]*RegionServer
	nextRS  int
	stopped bool
}

// NewCluster boots the deployment: HDFS datanodes, ZooKeeper, an
// active and a backup master, and cfg.RegionServers region servers.
func NewCluster(cfg Config) (*Cluster, error) {
	cfg = cfg.withDefaults()
	c := &Cluster{
		cfg:     cfg,
		net:     rpc.NewNetwork(cfg.NetLatency, cfg.Clock),
		zks:     zk.NewServer(),
		dfs:     hdfs.NewCluster(cfg.RegionServers, hdfs.WithReplication(cfg.Replication)),
		wal:     newWALStore(),
		servers: make(map[string]*RegionServer),
	}
	for i := 0; i < 2; i++ {
		m, err := startMaster(fmt.Sprintf("hmaster-%d", i+1), c)
		if err != nil {
			return nil, err
		}
		c.masters = append(c.masters, m)
	}
	for i := 0; i < cfg.RegionServers; i++ {
		if _, err := c.addRegionServer(); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// Network exposes the cluster's RPC fabric (the TSDB layer attaches
// its daemons to it).
func (c *Cluster) Network() *rpc.Network { return c.net }

// DFS exposes the underlying HDFS cluster.
func (c *Cluster) DFS() *hdfs.Cluster { return c.dfs }

// ZK exposes the coordination service.
func (c *Cluster) ZK() *zk.Server { return c.zks }

// masterAddrs lists master RPC addresses, active first when known.
func (c *Cluster) masterAddrs() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	addrs := make([]string, 0, len(c.masters))
	for _, m := range c.masters {
		if m.IsActive() {
			addrs = append([]string{masterAddr(m.name)}, addrs...)
		} else {
			addrs = append(addrs, masterAddr(m.name))
		}
	}
	return addrs
}

// ActiveMaster returns the currently leading master.
func (c *Cluster) ActiveMaster() (*Master, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, m := range c.masters {
		if m.IsActive() {
			return m, nil
		}
	}
	return nil, ErrNotActive
}

// addRegionServer starts rs-<n> and registers it.
func (c *Cluster) addRegionServer() (*RegionServer, error) {
	c.mu.Lock()
	c.nextRS++
	name := fmt.Sprintf("rs-%d", c.nextRS)
	c.mu.Unlock()
	rs, err := startRegionServer(name, c)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	c.servers[name] = rs
	c.mu.Unlock()
	return rs, nil
}

// AddRegionServer scales the cluster out by one server and returns it.
// Newly created regions will land on it; existing regions stay put
// (the paper pre-splits before loading, so balance comes from the
// split count).
func (c *Cluster) AddRegionServer() (*RegionServer, error) {
	return c.addRegionServer()
}

// RegionServer returns a server by name.
func (c *Cluster) RegionServer(name string) (*RegionServer, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	rs, ok := c.servers[name]
	return rs, ok
}

// RegionServers returns the servers sorted by name.
func (c *Cluster) RegionServers() []*RegionServer {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*RegionServer, 0, len(c.servers))
	for _, rs := range c.servers {
		out = append(out, rs)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// KillRegionServer crashes a server (failure injection). The master
// notices through the lost ZooKeeper lease and recovers its regions.
func (c *Cluster) KillRegionServer(name string) error {
	rs, ok := c.RegionServer(name)
	if !ok {
		return fmt.Errorf("hbase: unknown region server %q", name)
	}
	rs.crash()
	return nil
}

// CreateTable pre-splits the key space (see Master.CreateTable).
func (c *Cluster) CreateTable(splitKeys [][]byte) error {
	m, err := c.ActiveMaster()
	if err != nil {
		return err
	}
	return m.CreateTable(splitKeys)
}

// Stop shuts everything down.
func (c *Cluster) Stop() {
	c.mu.Lock()
	if c.stopped {
		c.mu.Unlock()
		return
	}
	c.stopped = true
	masters := append([]*Master(nil), c.masters...)
	c.mu.Unlock()
	for _, m := range masters {
		m.stop()
	}
	c.net.Close()
}

// TotalCellsWritten sums cells accepted across all region servers.
func (c *Cluster) TotalCellsWritten() int64 {
	var total int64
	for _, rs := range c.RegionServers() {
		total += rs.CellsWritten.Value()
	}
	return total
}

// WriteShares returns each live server's fraction of all written
// cells — the hotspotting diagnostic for the salting experiment.
func (c *Cluster) WriteShares() map[string]float64 {
	servers := c.RegionServers()
	total := float64(c.TotalCellsWritten())
	out := make(map[string]float64, len(servers))
	for _, rs := range servers {
		if total > 0 {
			out[rs.name] = float64(rs.CellsWritten.Value()) / total
		} else {
			out[rs.name] = 0
		}
	}
	return out
}
