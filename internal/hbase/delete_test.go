package hbase

import (
	"testing"

	"repro/internal/hdfs"
)

func TestDeleteTombstonesSlot(t *testing.T) {
	c := newTestCluster(t, Config{RegionServers: 2})
	if err := c.CreateTable(nil); err != nil {
		t.Fatal(err)
	}
	cl := c.NewClient(ClientConfig{})
	if err := cl.Put([]Cell{cell("a", "1", "x"), cell("a", "2", "y"), cell("b", "1", "z")}); err != nil {
		t.Fatal(err)
	}
	if err := cl.Delete([]Cell{cell("a", "2", "")}); err != nil {
		t.Fatal(err)
	}
	got, err := cl.Scan(nil, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("scan after delete = %d cells, want 2", len(got))
	}
	for _, cc := range got {
		if string(cc.Row) == "a" && string(cc.Qual) == "2" {
			t.Fatal("deleted slot still visible")
		}
	}
	if err := cl.Delete(nil); err != nil {
		t.Fatal("empty delete must succeed")
	}
}

func TestTombstoneShadowsFlushedData(t *testing.T) {
	dfs := hdfs.NewCluster(2)
	r := newRegion(RegionInfo{ID: 9})
	r.put([]Cell{cell("k", "q", "old")}, 1)
	if _, err := r.flush(dfs); err != nil {
		t.Fatal(err)
	}
	// Tombstone lands in the memstore, shadowing the flushed version.
	tomb := cell("k", "q", "")
	tomb.Tomb = true
	r.put([]Cell{tomb}, 2)
	if got := r.scan(nil, nil, 0); len(got) != 0 {
		t.Fatalf("tombstone did not shadow flushed cell: %v", got)
	}
	// Flush the tombstone too, then compact: the marker is reclaimed.
	if _, err := r.flush(dfs); err != nil {
		t.Fatal(err)
	}
	if _, err := r.compact(dfs); err != nil {
		t.Fatal(err)
	}
	if got := r.scan(nil, nil, 0); len(got) != 0 {
		t.Fatalf("post-compaction scan = %v, want empty", got)
	}
	if len(r.files) != 1 || len(r.files[0].cells) != 0 {
		t.Fatal("major compaction must drop tombstones and shadowed cells")
	}
}

func TestTombstoneSurvivesCrashViaWAL(t *testing.T) {
	c := newTestCluster(t, Config{RegionServers: 2})
	if err := c.CreateTable(nil); err != nil {
		t.Fatal(err)
	}
	cl := c.NewClient(ClientConfig{})
	if err := cl.Put([]Cell{cell("a", "1", "x")}); err != nil {
		t.Fatal(err)
	}
	if err := cl.Delete([]Cell{cell("a", "1", "")}); err != nil {
		t.Fatal(err)
	}
	m, _ := c.ActiveMaster()
	if err := c.KillRegionServer(m.Regions()[0].Server); err != nil {
		t.Fatal(err)
	}
	got, err := cl.Scan(nil, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("deleted cell resurrected after crash recovery: %v", got)
	}
}
