package hbase

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/rpc"
)

// ErrRetriesExhausted wraps the final failure after the client's retry
// budget runs out.
var ErrRetriesExhausted = errors.New("hbase: retries exhausted")

// ClientConfig tunes routing behaviour.
type ClientConfig struct {
	// MaxRetries bounds put/scan retries after region-map refreshes
	// (default 30 — failover takes a few refresh rounds).
	MaxRetries int
	// RetryBackoff is the pause between retries (default 5ms).
	RetryBackoff time.Duration
	// FailFast disables retries on queue overflow, surfacing
	// backpressure to the caller instead of absorbing it. The ingestion
	// proxy experiment uses this to contrast buffered vs unbuffered
	// pipelines.
	FailFast bool
}

func (c ClientConfig) withDefaults() ClientConfig {
	if c.MaxRetries <= 0 {
		c.MaxRetries = 30
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 5 * time.Millisecond
	}
	return c
}

// Client routes puts and scans to region servers using a cached region
// map, refreshing from the active master on routing misses — the same
// caching protocol HBase clients use. Multi-region batches are
// pipelined: the per-region RPCs are issued together through the
// fabric's futures and awaited as a group, so a batch costs one
// slowest-region round trip instead of the sum.
type Client struct {
	clu *Cluster
	cfg ClientConfig

	mu      sync.RWMutex
	regions []RegionInfo // sorted by start key
}

// NewClient returns a routing client for the cluster.
func (c *Cluster) NewClient(cfg ClientConfig) *Client {
	return &Client{clu: c, cfg: cfg.withDefaults()}
}

// refresh fetches the region map from whichever master is active.
func (cl *Client) refresh(ctx context.Context) error {
	var lastErr error
	for _, m := range cl.clu.masterAddrs() {
		resp, err := cl.clu.net.Call(ctx, m, "regions", nil)
		if err != nil {
			lastErr = err
			continue
		}
		regions := resp.([]RegionInfo)
		cl.mu.Lock()
		cl.regions = regions
		cl.mu.Unlock()
		return nil
	}
	return fmt.Errorf("hbase: no active master: %w", lastErr)
}

// locate returns the region containing key, refreshing once on miss.
func (cl *Client) locate(ctx context.Context, key []byte) (RegionInfo, error) {
	cl.mu.RLock()
	ri, ok := locateIn(cl.regions, key)
	cl.mu.RUnlock()
	if ok {
		return ri, nil
	}
	if err := cl.refresh(ctx); err != nil {
		return RegionInfo{}, err
	}
	cl.mu.RLock()
	defer cl.mu.RUnlock()
	ri, ok = locateIn(cl.regions, key)
	if !ok {
		return RegionInfo{}, fmt.Errorf("hbase: no region for key %q (table missing?)", key)
	}
	return ri, nil
}

// locateIn finds the region containing key in a sorted region list.
func locateIn(regions []RegionInfo, key []byte) (RegionInfo, bool) {
	// Binary search over start keys: find the last region whose start
	// is ≤ key.
	lo, hi := 0, len(regions)-1
	for lo <= hi {
		mid := (lo + hi) / 2
		if regions[mid].Contains(key) {
			return regions[mid], true
		}
		if len(regions[mid].Start) == 0 || string(regions[mid].Start) <= string(key) {
			lo = mid + 1
		} else {
			hi = mid - 1
		}
	}
	return RegionInfo{}, false
}

// Put writes cells with no deadline (see PutContext).
func (cl *Client) Put(cells []Cell) error {
	return cl.PutContext(context.Background(), cells)
}

// PutContext writes cells, grouping them by destination region,
// pipelining the per-region batches through futures, and retrying
// through failovers. It returns the first permanent error, or ctx's
// error once the deadline/cancellation cuts the retry loop.
func (cl *Client) PutContext(ctx context.Context, cells []Cell) error {
	return cl.mutate(ctx, cells, "put", func(id int, group []Cell) any {
		return &PutRequest{Region: id, Cells: group}
	}, cl.cfg.FailFast)
}

// Delete tombstones cells with no deadline (see DeleteContext).
func (cl *Client) Delete(cells []Cell) error {
	return cl.DeleteContext(context.Background(), cells)
}

// DeleteContext tombstones the (Row, Qual) slots of the given cells.
// It follows the same routing, pipelining and retry path as
// PutContext.
func (cl *Client) DeleteContext(ctx context.Context, cells []Cell) error {
	return cl.mutate(ctx, cells, "delete", func(id int, group []Cell) any {
		return &DeleteRequest{Region: id, Cells: group}
	}, false)
}

// mutate is the shared write path: group by region, issue every region
// RPC asynchronously, gather, and retry the failed groups.
func (cl *Client) mutate(ctx context.Context, cells []Cell, method string, req func(id int, group []Cell) any, failFast bool) error {
	if len(cells) == 0 {
		return nil
	}
	remaining := cells
	var lastErr error
	for attempt := 0; attempt <= cl.cfg.MaxRetries; attempt++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		groups := make(map[int][]Cell)
		infos := make(map[int]RegionInfo)
		for _, c := range remaining {
			ri, err := cl.locate(ctx, c.Row)
			if err != nil {
				return err
			}
			groups[ri.ID] = append(groups[ri.ID], c)
			infos[ri.ID] = ri
		}
		// Pipeline: launch every region's RPC before waiting on any —
		// the batch overlaps across region servers.
		ids := make([]int, 0, len(groups))
		futs := make([]*rpc.Future, 0, len(groups))
		for id, group := range groups {
			ri := infos[id]
			ids = append(ids, id)
			futs = append(futs, cl.clu.net.Go(ctx, rsAddr(ri.Server), method, req(id, group)))
		}
		var failed []Cell
		for i, f := range futs {
			_, err := f.Wait(ctx)
			if err == nil {
				continue
			}
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				return err
			}
			if errors.Is(err, rpc.ErrQueueOverflow) && failFast {
				return err // surface backpressure to the caller
			}
			lastErr = err
			failed = append(failed, groups[ids[i]]...)
		}
		if len(failed) == 0 {
			return nil
		}
		remaining = failed
		// Ask the active master to reconcile, then refresh the map.
		cl.poke(ctx)
		if err := cl.refresh(ctx); err != nil {
			lastErr = err
		}
		time.Sleep(cl.cfg.RetryBackoff)
	}
	return fmt.Errorf("%w: %v", ErrRetriesExhausted, lastErr)
}

// poke nudges the active master to reconcile assignments (stands in for
// the ZooKeeper watch latency in the real system).
func (cl *Client) poke(ctx context.Context) {
	for _, m := range cl.clu.masterAddrs() {
		if _, err := cl.clu.net.Call(ctx, m, "reconcile", nil); err == nil {
			return
		}
	}
}

// Scan reads [start, end) with no deadline (see ScanContext).
func (cl *Client) Scan(start, end []byte, limit int) ([]Cell, error) {
	return cl.ScanContext(context.Background(), start, end, limit)
}

// ScanContext returns all cells in [start, end) across regions, sorted
// by (Row, Qual). limit <= 0 means unlimited; with a limit, the scan
// walks regions in order and stops once enough cells are gathered.
// Unlimited scans are pipelined across the overlapping regions.
func (cl *Client) ScanContext(ctx context.Context, start, end []byte, limit int) ([]Cell, error) {
	var lastErr error
	for attempt := 0; attempt <= cl.cfg.MaxRetries; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if attempt > 0 {
			cl.poke(ctx)
			if err := cl.refresh(ctx); err != nil {
				return nil, err
			}
			time.Sleep(cl.cfg.RetryBackoff)
		}
		cl.mu.RLock()
		regions := append([]RegionInfo(nil), cl.regions...)
		cl.mu.RUnlock()
		if len(regions) == 0 {
			if err := cl.refresh(ctx); err != nil {
				return nil, err
			}
			cl.mu.RLock()
			regions = append([]RegionInfo(nil), cl.regions...)
			cl.mu.RUnlock()
		}
		overlapping := regions[:0:0]
		for _, ri := range regions {
			if rangesOverlap(ri, start, end) {
				overlapping = append(overlapping, ri)
			}
		}
		var out []Cell
		var scanErr error
		if limit > 0 {
			out, scanErr = cl.scanSerial(ctx, overlapping, start, end, limit)
		} else {
			out, scanErr = cl.scanPipelined(ctx, overlapping, start, end)
		}
		if scanErr != nil {
			if errors.Is(scanErr, context.Canceled) || errors.Is(scanErr, context.DeadlineExceeded) {
				return nil, scanErr
			}
			lastErr = scanErr
			continue
		}
		sortCells(out)
		if limit > 0 && len(out) > limit {
			out = out[:limit]
		}
		return out, nil
	}
	return nil, fmt.Errorf("%w: %v", ErrRetriesExhausted, lastErr)
}

// scanSerial walks regions one at a time so a satisfied limit skips
// the remaining regions entirely.
func (cl *Client) scanSerial(ctx context.Context, regions []RegionInfo, start, end []byte, limit int) ([]Cell, error) {
	var out []Cell
	for _, ri := range regions {
		resp, err := cl.clu.net.Call(ctx, rsAddr(ri.Server), "scan", &ScanRequest{Region: ri.ID, Start: start, End: end, Limit: limit})
		if err != nil {
			return nil, err
		}
		out = append(out, resp.(*ScanResponse).Cells...)
		if len(out) >= limit {
			break
		}
	}
	return out, nil
}

// scanPipelined issues every region scan concurrently and merges.
func (cl *Client) scanPipelined(ctx context.Context, regions []RegionInfo, start, end []byte) ([]Cell, error) {
	futs := make([]*rpc.Future, len(regions))
	for i, ri := range regions {
		futs[i] = cl.clu.net.Go(ctx, rsAddr(ri.Server), "scan", &ScanRequest{Region: ri.ID, Start: start, End: end})
	}
	var out []Cell
	var firstErr error
	for _, f := range futs {
		resp, err := f.Wait(ctx)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		out = append(out, resp.(*ScanResponse).Cells...)
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

// rangesOverlap reports whether region ri intersects [start, end).
func rangesOverlap(ri RegionInfo, start, end []byte) bool {
	if len(end) > 0 && len(ri.Start) > 0 && string(end) <= string(ri.Start) {
		return false
	}
	if len(start) > 0 && len(ri.End) > 0 && string(start) >= string(ri.End) {
		return false
	}
	return true
}
