package hbase

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/rpc"
)

// ErrRetriesExhausted wraps the final failure after the client's retry
// budget runs out.
var ErrRetriesExhausted = errors.New("hbase: retries exhausted")

// ClientConfig tunes routing behaviour.
type ClientConfig struct {
	// MaxRetries bounds put/scan retries after region-map refreshes
	// (default 30 — failover takes a few refresh rounds).
	MaxRetries int
	// RetryBackoff is the pause between retries (default 5ms).
	RetryBackoff time.Duration
	// FailFast disables retries on queue overflow, surfacing
	// backpressure to the caller instead of absorbing it. The ingestion
	// proxy experiment uses this to contrast buffered vs unbuffered
	// pipelines.
	FailFast bool
}

func (c ClientConfig) withDefaults() ClientConfig {
	if c.MaxRetries <= 0 {
		c.MaxRetries = 30
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 5 * time.Millisecond
	}
	return c
}

// Client routes puts and scans to region servers using a cached region
// map, refreshing from the active master on routing misses — the same
// caching protocol HBase clients use.
type Client struct {
	clu *Cluster
	cfg ClientConfig

	mu      sync.RWMutex
	regions []RegionInfo // sorted by start key
}

// NewClient returns a routing client for the cluster.
func (c *Cluster) NewClient(cfg ClientConfig) *Client {
	return &Client{clu: c, cfg: cfg.withDefaults()}
}

// refresh fetches the region map from whichever master is active.
func (cl *Client) refresh() error {
	var lastErr error
	for _, m := range cl.clu.masterAddrs() {
		resp, err := cl.clu.net.Call(m, "regions", nil)
		if err != nil {
			lastErr = err
			continue
		}
		regions := resp.([]RegionInfo)
		cl.mu.Lock()
		cl.regions = regions
		cl.mu.Unlock()
		return nil
	}
	return fmt.Errorf("hbase: no active master: %w", lastErr)
}

// locate returns the region containing key, refreshing once on miss.
func (cl *Client) locate(key []byte) (RegionInfo, error) {
	cl.mu.RLock()
	ri, ok := locateIn(cl.regions, key)
	cl.mu.RUnlock()
	if ok {
		return ri, nil
	}
	if err := cl.refresh(); err != nil {
		return RegionInfo{}, err
	}
	cl.mu.RLock()
	defer cl.mu.RUnlock()
	ri, ok = locateIn(cl.regions, key)
	if !ok {
		return RegionInfo{}, fmt.Errorf("hbase: no region for key %q (table missing?)", key)
	}
	return ri, nil
}

// locateIn finds the region containing key in a sorted region list.
func locateIn(regions []RegionInfo, key []byte) (RegionInfo, bool) {
	// Binary search over start keys: find the last region whose start
	// is ≤ key.
	lo, hi := 0, len(regions)-1
	for lo <= hi {
		mid := (lo + hi) / 2
		if regions[mid].Contains(key) {
			return regions[mid], true
		}
		if len(regions[mid].Start) == 0 || string(regions[mid].Start) <= string(key) {
			lo = mid + 1
		} else {
			hi = mid - 1
		}
	}
	return RegionInfo{}, false
}

// Put writes cells, grouping them by destination region and retrying
// through failovers. It returns the first permanent error.
func (cl *Client) Put(cells []Cell) error {
	if len(cells) == 0 {
		return nil
	}
	remaining := cells
	var lastErr error
	for attempt := 0; attempt <= cl.cfg.MaxRetries; attempt++ {
		groups := make(map[int][]Cell)
		infos := make(map[int]RegionInfo)
		for _, c := range remaining {
			ri, err := cl.locate(c.Row)
			if err != nil {
				return err
			}
			groups[ri.ID] = append(groups[ri.ID], c)
			infos[ri.ID] = ri
		}
		var failed []Cell
		for id, group := range groups {
			ri := infos[id]
			_, err := cl.clu.net.Call(rsAddr(ri.Server), "put", &PutRequest{Region: id, Cells: group})
			if err == nil {
				continue
			}
			if errors.Is(err, rpc.ErrQueueOverflow) && cl.cfg.FailFast {
				return err // surface backpressure to the caller
			}
			lastErr = err
			failed = append(failed, group...)
		}
		if len(failed) == 0 {
			return nil
		}
		remaining = failed
		// Ask the active master to reconcile, then refresh the map.
		cl.poke()
		if err := cl.refresh(); err != nil {
			lastErr = err
		}
		time.Sleep(cl.cfg.RetryBackoff)
	}
	return fmt.Errorf("%w: %v", ErrRetriesExhausted, lastErr)
}

// Delete tombstones the (Row, Qual) slots of the given cells. It
// follows the same routing and retry path as Put.
func (cl *Client) Delete(cells []Cell) error {
	if len(cells) == 0 {
		return nil
	}
	remaining := cells
	var lastErr error
	for attempt := 0; attempt <= cl.cfg.MaxRetries; attempt++ {
		groups := make(map[int][]Cell)
		infos := make(map[int]RegionInfo)
		for _, c := range remaining {
			ri, err := cl.locate(c.Row)
			if err != nil {
				return err
			}
			groups[ri.ID] = append(groups[ri.ID], c)
			infos[ri.ID] = ri
		}
		var failed []Cell
		for id, group := range groups {
			ri := infos[id]
			_, err := cl.clu.net.Call(rsAddr(ri.Server), "delete", &DeleteRequest{Region: id, Cells: group})
			if err == nil {
				continue
			}
			lastErr = err
			failed = append(failed, group...)
		}
		if len(failed) == 0 {
			return nil
		}
		remaining = failed
		cl.poke()
		if err := cl.refresh(); err != nil {
			lastErr = err
		}
		time.Sleep(cl.cfg.RetryBackoff)
	}
	return fmt.Errorf("%w: %v", ErrRetriesExhausted, lastErr)
}

// poke nudges the active master to reconcile assignments (stands in for
// the ZooKeeper watch latency in the real system).
func (cl *Client) poke() {
	for _, m := range cl.clu.masterAddrs() {
		if _, err := cl.clu.net.Call(m, "reconcile", nil); err == nil {
			return
		}
	}
}

// Scan returns all cells in [start, end) across regions, sorted by
// (Row, Qual). limit <= 0 means unlimited; with a limit, the scan stops
// once enough cells are gathered.
func (cl *Client) Scan(start, end []byte, limit int) ([]Cell, error) {
	var lastErr error
	for attempt := 0; attempt <= cl.cfg.MaxRetries; attempt++ {
		if attempt > 0 {
			cl.poke()
			if err := cl.refresh(); err != nil {
				return nil, err
			}
			time.Sleep(cl.cfg.RetryBackoff)
		}
		cl.mu.RLock()
		regions := append([]RegionInfo(nil), cl.regions...)
		cl.mu.RUnlock()
		if len(regions) == 0 {
			if err := cl.refresh(); err != nil {
				return nil, err
			}
			cl.mu.RLock()
			regions = append([]RegionInfo(nil), cl.regions...)
			cl.mu.RUnlock()
		}
		var out []Cell
		ok := true
		for _, ri := range regions {
			if !rangesOverlap(ri, start, end) {
				continue
			}
			resp, err := cl.clu.net.Call(rsAddr(ri.Server), "scan", &ScanRequest{Region: ri.ID, Start: start, End: end, Limit: limit})
			if err != nil {
				lastErr = err
				ok = false
				break
			}
			out = append(out, resp.(*ScanResponse).Cells...)
			if limit > 0 && len(out) >= limit {
				break
			}
		}
		if ok {
			sortCells(out)
			if limit > 0 && len(out) > limit {
				out = out[:limit]
			}
			return out, nil
		}
	}
	return nil, fmt.Errorf("%w: %v", ErrRetriesExhausted, lastErr)
}

// rangesOverlap reports whether region ri intersects [start, end).
func rangesOverlap(ri RegionInfo, start, end []byte) bool {
	if len(end) > 0 && len(ri.Start) > 0 && string(end) <= string(ri.Start) {
		return false
	}
	if len(start) > 0 && len(ri.End) > 0 && string(start) >= string(ri.End) {
		return false
	}
	return true
}
