package hbase

import (
	"context"
	"encoding/binary"
	"testing"
)

func benchCluster(b *testing.B, nodes int) (*Cluster, *Client) {
	b.Helper()
	c, err := NewCluster(Config{RegionServers: nodes})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(c.Stop)
	if err := c.CreateTable(byteSplits(nodes * 2)); err != nil {
		b.Fatal(err)
	}
	return c, c.NewClient(ClientConfig{})
}

func BenchmarkClientPut(b *testing.B) {
	_, cl := benchCluster(b, 4)
	const batch = 500
	cells := make([]Cell, batch)
	var seq [8]byte
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range cells {
			binary.BigEndian.PutUint64(seq[:], uint64(i*batch+j))
			cells[j] = Cell{Row: append([]byte{byte(j)}, seq[:]...), Qual: []byte{0, 1}, Value: seq[:]}
		}
		if err := cl.Put(cells); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(batch*b.N)/b.Elapsed().Seconds(), "cells/s")
}

func BenchmarkClientScan(b *testing.B) {
	_, cl := benchCluster(b, 4)
	var cells []Cell
	var seq [8]byte
	for i := 0; i < 5000; i++ {
		binary.BigEndian.PutUint64(seq[:], uint64(i))
		cells = append(cells, Cell{Row: append([]byte{byte(i % 251)}, seq[:]...), Qual: []byte{0}, Value: seq[:]})
	}
	if err := cl.Put(cells); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got, err := cl.Scan(nil, nil, 0)
		if err != nil {
			b.Fatal(err)
		}
		if len(got) != 5000 {
			b.Fatalf("scan = %d", len(got))
		}
	}
	b.ReportMetric(float64(5000*b.N)/b.Elapsed().Seconds(), "cells-read/s")
}

func BenchmarkMemstoreFlushReopen(b *testing.B) {
	c, cl := benchCluster(b, 2)
	var cells []Cell
	var seq [8]byte
	for i := 0; i < 2000; i++ {
		binary.BigEndian.PutUint64(seq[:], uint64(i))
		cells = append(cells, Cell{Row: append([]byte(nil), seq[:]...), Qual: []byte{0}, Value: seq[:]})
	}
	if err := cl.Put(cells); err != nil {
		b.Fatal(err)
	}
	m, err := c.ActiveMaster()
	if err != nil {
		b.Fatal(err)
	}
	ri := m.Regions()[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.net.Call(context.Background(), rsAddr(ri.Server), "flush", &FlushRequest{Region: ri.ID}); err != nil {
			b.Fatal(err)
		}
		if _, _, err := openRegion(ri, c.dfs); err != nil {
			b.Fatal(err)
		}
	}
}
