package hbase

import (
	"context"
	"errors"
	"fmt"
	"sort"
)

// Rebalance evens region counts across live servers by moving regions
// from the most- to the least-loaded ones. It supports the paper's
// first piece of ongoing work — "experimenting with increasing storage
// nodes to further scale up throughput" — where newly added region
// servers must take over existing regions before they contribute.
//
// A move is flush + close on the donor followed by open on the
// recipient (data comes back from the store files; nothing is lost
// because close flushes the memstore). It returns the number of
// regions moved.
func (m *Master) Rebalance() (int, error) {
	if !m.IsActive() {
		return 0, ErrNotActive
	}
	live := m.liveServers()
	if len(live) == 0 {
		return 0, ErrNoServers
	}
	moved := 0
	// Iterate until balanced; each pass moves one region off the most
	// loaded server. Bounded by the region count.
	for pass := 0; pass < len(m.Regions())+1; pass++ {
		byServer := make(map[string][]RegionInfo, len(live))
		for _, s := range live {
			byServer[s] = nil
		}
		for _, ri := range m.Regions() {
			if _, ok := byServer[ri.Server]; ok {
				byServer[ri.Server] = append(byServer[ri.Server], ri)
			}
		}
		var maxS, minS string
		maxN, minN := -1, int(^uint(0)>>1)
		// Deterministic iteration for reproducible balancing.
		names := make([]string, 0, len(byServer))
		for s := range byServer {
			names = append(names, s)
		}
		sort.Strings(names)
		for _, s := range names {
			n := len(byServer[s])
			if n > maxN {
				maxN, maxS = n, s
			}
			if n < minN {
				minN, minS = n, s
			}
		}
		if maxN-minN <= 1 {
			break // balanced
		}
		// Move the highest-id region (cheapest heuristic; ids are stable).
		donor := byServer[maxS]
		sort.Slice(donor, func(i, j int) bool { return donor[i].ID < donor[j].ID })
		victim := donor[len(donor)-1]
		if err := m.moveRegion(victim, minS); err != nil {
			return moved, err
		}
		moved++
	}
	return moved, nil
}

// moveRegion relocates one region to target: flush+close on the old
// server, open on the new, republish.
func (m *Master) moveRegion(ri RegionInfo, target string) error {
	if ri.Server == target {
		return nil
	}
	if ri.Server != "" {
		if _, err := m.clu.net.Call(context.Background(), rsAddr(ri.Server), "close", &CloseRequest{Region: ri.ID}); err != nil && !errors.Is(err, ErrWrongRegion) {
			return fmt.Errorf("hbase: move close region %d: %w", ri.ID, err)
		}
	}
	if _, err := m.clu.net.Call(context.Background(), rsAddr(target), "open", &OpenRequest{Info: RegionInfo{ID: ri.ID, Start: ri.Start, End: ri.End}}); err != nil {
		return fmt.Errorf("hbase: move open region %d on %s: %w", ri.ID, target, err)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	reg, ok := m.regions[ri.ID]
	if !ok {
		return fmt.Errorf("hbase: move: region %d vanished", ri.ID)
	}
	reg.Server = target
	return m.publishLocked(reg)
}
