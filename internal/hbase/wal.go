package hbase

import (
	"sync"
)

// walEntry is one durable write-ahead record: the cell, the region it
// belongs to, and the server-local sequence number.
type walEntry struct {
	Region int
	Seq    int64
	Cell   Cell
}

// walStore models the node-local durable disks holding each region
// server's write-ahead log. It survives region-server crashes (the
// process dies, the log does not), which is exactly what lets the
// master replay un-flushed writes on failover. Indexed by server name.
type walStore struct {
	mu   sync.Mutex
	logs map[string][]walEntry
}

func newWALStore() *walStore {
	return &walStore{logs: make(map[string][]walEntry)}
}

// Append durably records entries for server.
func (w *walStore) Append(server string, entries []walEntry) {
	w.mu.Lock()
	w.logs[server] = append(w.logs[server], entries...)
	w.mu.Unlock()
}

// EntriesFor returns the entries server holds for region with sequence
// greater than afterSeq, in append order.
func (w *walStore) EntriesFor(server string, region int, afterSeq int64) []walEntry {
	w.mu.Lock()
	defer w.mu.Unlock()
	var out []walEntry
	for _, e := range w.logs[server] {
		if e.Region == region && e.Seq > afterSeq {
			out = append(out, e)
		}
	}
	return out
}

// Truncate drops server's entries for region with sequence ≤ uptoSeq
// (called after a successful flush made them redundant).
func (w *walStore) Truncate(server string, region int, uptoSeq int64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	log := w.logs[server]
	kept := log[:0]
	for _, e := range log {
		if e.Region != region || e.Seq > uptoSeq {
			kept = append(kept, e)
		}
	}
	w.logs[server] = kept
}

// Drop removes server's entire log (after its regions were recovered
// elsewhere).
func (w *walStore) Drop(server string) {
	w.mu.Lock()
	delete(w.logs, server)
	w.mu.Unlock()
}

// Len returns the number of entries held for server (for tests).
func (w *walStore) Len(server string) int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.logs[server])
}
