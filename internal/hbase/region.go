package hbase

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/hdfs"
)

// RegionInfo is the metadata the master publishes for one region.
type RegionInfo struct {
	ID    int    `json:"id"`
	Start []byte `json:"start"` // inclusive; empty = -inf
	End   []byte `json:"end"`   // exclusive; empty = +inf
	// Server is the region server currently assigned, by name.
	Server string `json:"server"`
}

// Contains reports whether key falls in this region's range.
func (ri RegionInfo) Contains(key []byte) bool { return inRange(key, ri.Start, ri.End) }

// dir returns the region's HDFS directory prefix.
func (ri RegionInfo) dir() string { return regionDir(ri.ID) }

func regionDir(id int) string { return fmt.Sprintf("/hbase/region-%d/", id) }

// storeFile is one immutable flushed file, newest sequence wins.
type storeFile struct {
	path  string
	seq   int64 // highest WAL sequence contained
	cells []Cell
}

// region is the in-memory serving state for one assigned region.
type region struct {
	mu    sync.RWMutex
	info  RegionInfo
	mem   map[string]Cell // slotKey → newest cell
	memSz int             // approximate bytes in memstore
	files []storeFile     // sorted by seq ascending
	// maxSeq is the highest WAL sequence applied to this region (for
	// flush markers).
	maxSeq int64
}

func newRegion(info RegionInfo) *region {
	return &region{info: info, mem: make(map[string]Cell)}
}

// put applies cells (already range-checked) carrying WAL sequence seq.
func (r *region) put(cells []Cell, seq int64) {
	r.mu.Lock()
	for _, c := range cells {
		k := slotKey(c.Row, c.Qual)
		if old, ok := r.mem[k]; ok {
			r.memSz -= len(old.Row) + len(old.Qual) + len(old.Value)
		}
		cc := c.clone()
		r.mem[k] = cc
		r.memSz += len(cc.Row) + len(cc.Qual) + len(cc.Value)
	}
	if seq > r.maxSeq {
		r.maxSeq = seq
	}
	r.mu.Unlock()
}

// memSize returns the approximate memstore footprint in bytes.
func (r *region) memSize() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.memSz
}

// scan returns the merged view of [start, end): memstore shadows store
// files, newer files shadow older ones. Cells are sorted by (Row, Qual).
// limit <= 0 means unlimited.
func (r *region) scan(start, end []byte, limit int) []Cell {
	r.mu.RLock()
	defer r.mu.RUnlock()
	merged := make(map[string]Cell)
	// Oldest files first so newer overwrite.
	for _, sf := range r.files {
		for _, c := range sf.cells {
			if inRange(c.Row, start, end) {
				merged[slotKey(c.Row, c.Qual)] = c
			}
		}
	}
	for k, c := range r.mem {
		if inRange(c.Row, start, end) {
			merged[k] = c
		}
	}
	out := make([]Cell, 0, len(merged))
	for _, c := range merged {
		if c.Tomb {
			continue // delete marker shadows older versions
		}
		out = append(out, c)
	}
	sortCells(out)
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	return out
}

// flushMarker is the durable record of how far a region has flushed.
type flushMarker struct {
	FlushedSeq int64    `json:"flushedSeq"`
	Files      []string `json:"files"`
}

// flush writes the memstore to a new immutable store file in HDFS and
// clears it, returning the flushed sequence. A nil error with seq 0
// means the memstore was empty.
func (r *region) flush(dfs *hdfs.Cluster) (int64, error) {
	r.mu.Lock()
	if len(r.mem) == 0 {
		r.mu.Unlock()
		return 0, nil
	}
	cells := make([]Cell, 0, len(r.mem))
	for _, c := range r.mem {
		cells = append(cells, c)
	}
	sortCells(cells)
	seq := r.maxSeq
	path := fmt.Sprintf("%ssf-%020d", r.info.dir(), seq)
	r.mu.Unlock()

	if err := dfs.WriteFile(path, encodeCells(cells)); err != nil {
		return 0, fmt.Errorf("hbase: flush region %d: %w", r.info.ID, err)
	}
	r.mu.Lock()
	r.files = append(r.files, storeFile{path: path, seq: seq, cells: cells})
	sort.Slice(r.files, func(i, j int) bool { return r.files[i].seq < r.files[j].seq })
	r.mem = make(map[string]Cell)
	r.memSz = 0
	files := make([]string, len(r.files))
	for i, sf := range r.files {
		files[i] = sf.path
	}
	r.mu.Unlock()

	if err := r.writeMarker(dfs, seq, files); err != nil {
		return 0, err
	}
	return seq, nil
}

func (r *region) writeMarker(dfs *hdfs.Cluster, seq int64, files []string) error {
	data, err := json.Marshal(flushMarker{FlushedSeq: seq, Files: files})
	if err != nil {
		return err
	}
	if err := dfs.WriteFile(r.info.dir()+"marker", data); err != nil {
		return fmt.Errorf("hbase: write flush marker region %d: %w", r.info.ID, err)
	}
	return nil
}

// compact merges all store files into one (newest wins), deleting the
// inputs. It returns the number of files compacted away.
func (r *region) compact(dfs *hdfs.Cluster) (int, error) {
	r.mu.Lock()
	if len(r.files) < 2 {
		r.mu.Unlock()
		return 0, nil
	}
	old := append([]storeFile(nil), r.files...)
	merged := make(map[string]Cell)
	maxSeq := int64(0)
	for _, sf := range old { // ascending seq: newest wins
		for _, c := range sf.cells {
			merged[slotKey(c.Row, c.Qual)] = c
		}
		if sf.seq > maxSeq {
			maxSeq = sf.seq
		}
	}
	cells := make([]Cell, 0, len(merged))
	for _, c := range merged {
		if c.Tomb {
			continue // major compaction reclaims delete markers
		}
		cells = append(cells, c)
	}
	sortCells(cells)
	r.mu.Unlock()

	path := fmt.Sprintf("%ssf-%020d-c", r.info.dir(), maxSeq)
	if err := dfs.WriteFile(path, encodeCells(cells)); err != nil {
		return 0, fmt.Errorf("hbase: compact region %d: %w", r.info.ID, err)
	}

	r.mu.Lock()
	// Only swap if the file set is unchanged (no concurrent flush).
	same := len(r.files) == len(old)
	if same {
		for i := range old {
			if r.files[i].path != old[i].path {
				same = false
				break
			}
		}
	}
	if !same {
		r.mu.Unlock()
		_ = dfs.DeleteFile(path)
		return 0, nil
	}
	r.files = []storeFile{{path: path, seq: maxSeq, cells: cells}}
	r.mu.Unlock()

	if err := r.writeMarker(dfs, maxSeq, []string{path}); err != nil {
		return 0, err
	}
	for _, sf := range old {
		_ = dfs.DeleteFile(sf.path)
	}
	return len(old), nil
}

// openRegion reconstructs a region's flushed state from HDFS: reads the
// marker, loads the listed store files. Used when a region is assigned
// to a server (initial assignment, failover, split).
func openRegion(info RegionInfo, dfs *hdfs.Cluster) (*region, int64, error) {
	r := newRegion(info)
	markerPath := info.dir() + "marker"
	if !dfs.Exists(markerPath) {
		return r, 0, nil // brand-new region
	}
	data, err := dfs.ReadFile(markerPath)
	if err != nil {
		return nil, 0, fmt.Errorf("hbase: open region %d marker: %w", info.ID, err)
	}
	var m flushMarker
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, 0, fmt.Errorf("hbase: open region %d marker: %w", info.ID, err)
	}
	for _, path := range m.Files {
		raw, err := dfs.ReadFile(path)
		if err != nil {
			return nil, 0, fmt.Errorf("hbase: open region %d file %s: %w", info.ID, path, err)
		}
		cells, err := decodeCells(raw)
		if err != nil {
			return nil, 0, fmt.Errorf("hbase: open region %d file %s: %w", info.ID, path, err)
		}
		seq := seqFromPath(path)
		r.files = append(r.files, storeFile{path: path, seq: seq, cells: cells})
	}
	sort.Slice(r.files, func(i, j int) bool { return r.files[i].seq < r.files[j].seq })
	r.maxSeq = m.FlushedSeq
	return r, m.FlushedSeq, nil
}

// seqFromPath recovers the sequence embedded in a store file name.
func seqFromPath(path string) int64 {
	base := path[strings.LastIndex(path, "/")+1:]
	base = strings.TrimPrefix(base, "sf-")
	base = strings.TrimSuffix(base, "-c")
	n, _ := strconv.ParseInt(base, 10, 64)
	return n
}
