package hbase

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func newTestCluster(t *testing.T, cfg Config) *Cluster {
	t.Helper()
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Stop)
	return c
}

// splits returns n-1 split keys giving n regions over single-byte
// prefixes, mirroring the TSDB's salt-based pre-split.
func byteSplits(n int) [][]byte {
	var out [][]byte
	for i := 1; i < n; i++ {
		out = append(out, []byte{byte(i * 256 / n)})
	}
	return out
}

func TestClusterBootAndTableCreation(t *testing.T) {
	c := newTestCluster(t, Config{RegionServers: 3})
	if err := c.CreateTable(byteSplits(6)); err != nil {
		t.Fatal(err)
	}
	m, err := c.ActiveMaster()
	if err != nil {
		t.Fatal(err)
	}
	regions := m.Regions()
	if len(regions) != 6 {
		t.Fatalf("regions = %d, want 6", len(regions))
	}
	// Ranges must tile the key space: first open start, last open end.
	if regions[0].Start != nil || regions[len(regions)-1].End != nil {
		t.Fatal("boundary regions must be open-ended")
	}
	for i := 1; i < len(regions); i++ {
		if string(regions[i].Start) != string(regions[i-1].End) {
			t.Fatal("regions must tile the key space")
		}
	}
	// Round-robin assignment over 3 servers.
	byServer := map[string]int{}
	for _, ri := range regions {
		byServer[ri.Server]++
	}
	if len(byServer) != 3 {
		t.Fatalf("regions on %d servers, want 3", len(byServer))
	}
	for s, n := range byServer {
		if n != 2 {
			t.Fatalf("server %s has %d regions, want 2", s, n)
		}
	}
}

func TestPutScanRoundTrip(t *testing.T) {
	c := newTestCluster(t, Config{RegionServers: 3})
	if err := c.CreateTable(byteSplits(4)); err != nil {
		t.Fatal(err)
	}
	cl := c.NewClient(ClientConfig{})
	var cells []Cell
	for i := 0; i < 200; i++ {
		cells = append(cells, Cell{
			Row:   []byte{byte(i), byte(i >> 8), 'r'},
			Qual:  []byte{0, 1},
			Value: []byte(fmt.Sprintf("v%d", i)),
		})
	}
	if err := cl.Put(cells); err != nil {
		t.Fatal(err)
	}
	got, err := cl.Scan(nil, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 200 {
		t.Fatalf("scan = %d cells, want 200", len(got))
	}
	// Sorted by row.
	for i := 1; i < len(got); i++ {
		if got[i].Less(got[i-1]) {
			t.Fatal("scan output not sorted")
		}
	}
	// Ranged scan.
	got, err = cl.Scan([]byte{10}, []byte{20}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, cc := range got {
		if cc.Row[0] < 10 || cc.Row[0] >= 20 {
			t.Fatalf("ranged scan leaked row %v", cc.Row)
		}
	}
	if c.TotalCellsWritten() != 200 {
		t.Fatalf("TotalCellsWritten = %d", c.TotalCellsWritten())
	}
}

func TestPutEmptyAndMissingTable(t *testing.T) {
	c := newTestCluster(t, Config{RegionServers: 1})
	cl := c.NewClient(ClientConfig{})
	if err := cl.Put(nil); err != nil {
		t.Fatal("empty put must succeed")
	}
	if err := cl.Put([]Cell{cell("k", "q", "v")}); err == nil {
		t.Fatal("put without a table must fail")
	}
}

func TestRegionServerCrashRecovery(t *testing.T) {
	c := newTestCluster(t, Config{RegionServers: 3})
	if err := c.CreateTable(byteSplits(3)); err != nil {
		t.Fatal(err)
	}
	cl := c.NewClient(ClientConfig{})
	var cells []Cell
	for i := 0; i < 90; i++ {
		cells = append(cells, Cell{Row: []byte{byte(i * 3)}, Qual: []byte{byte(i)}, Value: []byte("v")})
	}
	if err := cl.Put(cells); err != nil {
		t.Fatal(err)
	}
	// Kill a server holding at least one region (none were flushed, so
	// recovery must come from the WAL).
	m, err := c.ActiveMaster()
	if err != nil {
		t.Fatal(err)
	}
	victim := m.Regions()[0].Server
	if err := c.KillRegionServer(victim); err != nil {
		t.Fatal(err)
	}
	// Scans retry until the master reassigns; all 90 cells must survive.
	got, err := cl.Scan(nil, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 90 {
		t.Fatalf("scan after crash = %d cells, want 90 (WAL replay lost data)", len(got))
	}
	// The victim must no longer own anything.
	deadline := time.Now().Add(2 * time.Second)
	for {
		owns := 0
		for _, ri := range m.Regions() {
			if ri.Server == victim {
				owns++
			}
		}
		if owns == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("victim %s still owns %d regions", victim, owns)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestCrashRecoveryWithFlushedData(t *testing.T) {
	c := newTestCluster(t, Config{RegionServers: 2, FlushThresholdBytes: 64})
	if err := c.CreateTable(nil); err != nil { // single region
		t.Fatal(err)
	}
	cl := c.NewClient(ClientConfig{})
	// Write enough to force flushes, then a little more (unflushed tail
	// lives in WAL only).
	for i := 0; i < 30; i++ {
		if err := cl.Put([]Cell{cell(fmt.Sprintf("row-%03d", i), "q", "0123456789")}); err != nil {
			t.Fatal(err)
		}
	}
	m, _ := c.ActiveMaster()
	victim := m.Regions()[0].Server
	if err := c.KillRegionServer(victim); err != nil {
		t.Fatal(err)
	}
	got, err := cl.Scan(nil, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 30 {
		t.Fatalf("recovered %d cells, want 30 (storefile+WAL merge broken)", len(got))
	}
}

func TestManualSplitRedistributesData(t *testing.T) {
	c := newTestCluster(t, Config{RegionServers: 2})
	if err := c.CreateTable(nil); err != nil {
		t.Fatal(err)
	}
	cl := c.NewClient(ClientConfig{})
	var cells []Cell
	for i := 0; i < 100; i++ {
		cells = append(cells, Cell{Row: []byte{byte(i * 2)}, Qual: []byte("q"), Value: []byte("v")})
	}
	if err := cl.Put(cells); err != nil {
		t.Fatal(err)
	}
	m, _ := c.ActiveMaster()
	parent := m.Regions()[0]
	if err := m.Split(parent.ID, []byte{100}); err != nil {
		t.Fatal(err)
	}
	regions := m.Regions()
	if len(regions) != 2 {
		t.Fatalf("regions after split = %d", len(regions))
	}
	if string(regions[0].End) != string([]byte{100}) || string(regions[1].Start) != string([]byte{100}) {
		t.Fatalf("split boundaries wrong: %+v", regions)
	}
	got, err := cl.Scan(nil, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 100 {
		t.Fatalf("scan after split = %d cells, want 100", len(got))
	}
	// Splitting at a key outside the range must fail.
	if err := m.Split(regions[0].ID, []byte{200}); err == nil {
		t.Fatal("split outside range must fail")
	}
	if err := m.Split(9999, []byte{1}); err == nil {
		t.Fatal("split of unknown region must fail")
	}
}

func TestMasterFailover(t *testing.T) {
	c := newTestCluster(t, Config{RegionServers: 2})
	if err := c.CreateTable(byteSplits(2)); err != nil {
		t.Fatal(err)
	}
	active, err := c.ActiveMaster()
	if err != nil {
		t.Fatal(err)
	}
	// Kill the active master's session; the backup must take over and
	// keep serving the region map.
	active.sess.Close()
	deadline := time.Now().Add(2 * time.Second)
	var next *Master
	for {
		next, err = c.ActiveMaster()
		if err == nil && next.name != active.name {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("backup master never took over")
		}
		time.Sleep(5 * time.Millisecond)
	}
	cl := c.NewClient(ClientConfig{})
	if err := cl.Put([]Cell{cell("k", "q", "v")}); err != nil {
		t.Fatalf("put after failover: %v", err)
	}
	// The promoted master must have rebuilt the region map from zk.
	if got := len(next.Regions()); got != 2 {
		t.Fatalf("promoted master sees %d regions, want 2", got)
	}
}

func TestQueueOverflowCrashesServer(t *testing.T) {
	c := newTestCluster(t, Config{
		RegionServers:   1,
		RSQueueCap:      4,
		RSWorkers:       1,
		CrashOnOverflow: 8,
		// Slow service so the queue actually backs up.
		ServiceRatePerRS: 500,
	})
	if err := c.CreateTable(nil); err != nil {
		t.Fatal(err)
	}
	cl := c.NewClient(ClientConfig{FailFast: true, MaxRetries: 1})
	rs := c.RegionServers()[0]
	// Hammer with concurrent unbuffered writers until the server dies.
	done := make(chan struct{})
	for w := 0; w < 16; w++ {
		go func(w int) {
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				var cells []Cell
				for j := 0; j < 100; j++ {
					cells = append(cells, Cell{Row: []byte{byte(w), byte(i), byte(j)}, Qual: []byte("q"), Value: []byte("v")})
				}
				_ = cl.Put(cells)
			}
		}(w)
	}
	deadline := time.Now().Add(5 * time.Second)
	for !rs.Crashed() {
		if time.Now().After(deadline) {
			close(done)
			t.Fatal("region server never crashed under unbuffered overload")
		}
		time.Sleep(5 * time.Millisecond)
	}
	close(done)
	_, overflows := rs.RPCStats()
	if overflows < 8 {
		t.Fatalf("overflows = %d, want ≥ 8", overflows)
	}
}

func TestScaleOutAddsServers(t *testing.T) {
	c := newTestCluster(t, Config{RegionServers: 2})
	rs, err := c.AddRegionServer()
	if err != nil {
		t.Fatal(err)
	}
	if rs.Name() != "rs-3" {
		t.Fatalf("new server = %s", rs.Name())
	}
	// A table created now spreads over all three.
	if err := c.CreateTable(byteSplits(6)); err != nil {
		t.Fatal(err)
	}
	m, _ := c.ActiveMaster()
	byServer := map[string]int{}
	for _, ri := range m.Regions() {
		byServer[ri.Server]++
	}
	if len(byServer) != 3 {
		t.Fatalf("regions on %d servers, want 3", len(byServer))
	}
}

func TestClientFailFastSurfacesOverflow(t *testing.T) {
	c := newTestCluster(t, Config{RegionServers: 1, RSQueueCap: 1, RSWorkers: 1, ServiceRatePerRS: 100})
	if err := c.CreateTable(nil); err != nil {
		t.Fatal(err)
	}
	cl := c.NewClient(ClientConfig{FailFast: true})
	// Keep the single slow worker saturated from the background…
	stop := make(chan struct{})
	defer close(stop)
	for w := 0; w < 8; w++ {
		go func(w int) {
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				_ = cl.Put([]Cell{cell(fmt.Sprintf("bg%d-%d", w, i), "q", "v")})
			}
		}(w)
	}
	// …so a foreground put soon hits a full queue and fails fast.
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if err := cl.Put([]Cell{cell("fg", "q", "v")}); err != nil {
			return // backpressure surfaced
		}
	}
	t.Fatal("fail-fast client never surfaced backpressure")
}

func TestUnknownRegionServerKill(t *testing.T) {
	c := newTestCluster(t, Config{RegionServers: 1})
	if err := c.KillRegionServer("rs-99"); err == nil {
		t.Fatal("killing unknown server must fail")
	}
}

func TestWriteSharesAccounting(t *testing.T) {
	c := newTestCluster(t, Config{RegionServers: 2})
	if err := c.CreateTable(byteSplits(2)); err != nil {
		t.Fatal(err)
	}
	cl := c.NewClient(ClientConfig{})
	var cells []Cell
	for i := 0; i < 256; i += 2 {
		cells = append(cells, Cell{Row: []byte{byte(i)}, Qual: []byte("q"), Value: []byte("v")})
	}
	if err := cl.Put(cells); err != nil {
		t.Fatal(err)
	}
	shares := c.WriteShares()
	total := 0.0
	for _, s := range shares {
		total += s
	}
	if total < 0.99 || total > 1.01 {
		t.Fatalf("shares sum to %v", total)
	}
}

func TestErrorsAreSentinels(t *testing.T) {
	err := fmt.Errorf("wrap: %w", ErrWrongRegion)
	if !errors.Is(err, ErrWrongRegion) {
		t.Fatal("sentinel wrapping broken")
	}
}

// TestShutdownRaceUnderLoad is the regression for the synchronous
// fabric's "send on closed channel" panic (rpc.go's old Call): region
// servers are crashed and the whole cluster stopped while concurrent
// clients are mid-enqueue. Run with -race; any panic or race fails.
func TestShutdownRaceUnderLoad(t *testing.T) {
	c, err := NewCluster(Config{RegionServers: 3, RSQueueCap: 4, RSWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.CreateTable(byteSplits(6)); err != nil {
		t.Fatal(err)
	}
	// Tight retry budget so writers fail fast once the cluster is gone
	// instead of spinning through the full failover budget.
	cl := c.NewClient(ClientConfig{FailFast: true, MaxRetries: 2, RetryBackoff: time.Millisecond})
	stop := make(chan struct{})
	done := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				_ = cl.Put([]Cell{cell(fmt.Sprintf("w%d-%d", w, i), "q", "v")})
			}
		}(w)
	}
	go func() {
		defer close(done)
		// Crash servers one by one under load, then stop the cluster
		// while the writers are still hammering it.
		for _, rs := range c.RegionServers() {
			time.Sleep(2 * time.Millisecond)
			_ = c.KillRegionServer(rs.Name())
		}
		c.Stop()
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("cluster stop deadlocked under concurrent load")
	}
	close(stop)
	wg.Wait()
	// The fabric must reject, not panic: a post-stop put fails cleanly.
	if err := cl.Put([]Cell{cell("after", "q", "v")}); err == nil {
		t.Fatal("put after cluster stop must fail")
	}
}
