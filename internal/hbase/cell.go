// Package hbase is a miniature HBase: a distributed, sorted,
// range-partitioned key-value store layered on the simulated HDFS,
// ZooKeeper and RPC substrates. It models the parts of HBase the
// paper's findings depend on:
//
//   - Regions: contiguous row-key ranges served by RegionServers, with
//     in-memory MemStores flushed to immutable store files in HDFS and
//     a write-ahead log for crash recovery.
//   - Bounded RPC queues: RegionServers crash when their inbound queue
//     overflows persistently (§III-B), which is why the ingestion
//     pipeline needs the buffering reverse proxy.
//   - Key-hash placement: writes route by row key, so sequential keys
//     hotspot one server until the TSDB layer salts them (§III-B).
//   - Manual region splits and an HMaster (+backup, via ZooKeeper
//     election) that reassigns regions and replays WALs on crashes.
package hbase

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
)

// Cell is one versioned key-value entry: row key, column qualifier and
// value. Sorting is by (Row, Qual), with later sequence numbers
// shadowing earlier ones during reads. A cell with Tomb set is a
// delete marker: it shadows older versions of its slot and is elided
// from scans (and dropped entirely by major compaction).
type Cell struct {
	Row   []byte
	Qual  []byte
	Value []byte
	Tomb  bool
}

// Less orders cells by (Row, Qual).
func (c Cell) Less(o Cell) bool {
	if r := bytes.Compare(c.Row, o.Row); r != 0 {
		return r < 0
	}
	return bytes.Compare(c.Qual, o.Qual) < 0
}

// Same reports whether two cells address the same (Row, Qual) slot.
func (c Cell) Same(o Cell) bool {
	return bytes.Equal(c.Row, o.Row) && bytes.Equal(c.Qual, o.Qual)
}

// clone deep-copies a cell so callers can reuse buffers.
func (c Cell) clone() Cell {
	return Cell{
		Row:   append([]byte(nil), c.Row...),
		Qual:  append([]byte(nil), c.Qual...),
		Value: append([]byte(nil), c.Value...),
		Tomb:  c.Tomb,
	}
}

// slotKey returns an unambiguous map key for (Row, Qual) using a
// length prefix (rows may contain any byte, so plain concatenation
// would collide).
func slotKey(row, qual []byte) string {
	var b bytes.Buffer
	var lp [4]byte
	binary.BigEndian.PutUint32(lp[:], uint32(len(row)))
	b.Write(lp[:])
	b.Write(row)
	b.Write(qual)
	return b.String()
}

// sortCells orders cells by (Row, Qual) in place.
func sortCells(cells []Cell) {
	sort.Slice(cells, func(i, j int) bool { return cells[i].Less(cells[j]) })
}

// encodeCells serializes cells for a store file: a length-prefixed
// binary layout (no gob; the format is stable and compact).
func encodeCells(cells []Cell) []byte {
	var buf bytes.Buffer
	var lp [4]byte
	binary.BigEndian.PutUint32(lp[:], uint32(len(cells)))
	buf.Write(lp[:])
	for _, c := range cells {
		for _, field := range [][]byte{c.Row, c.Qual, c.Value} {
			binary.BigEndian.PutUint32(lp[:], uint32(len(field)))
			buf.Write(lp[:])
			buf.Write(field)
		}
		if c.Tomb {
			buf.WriteByte(1)
		} else {
			buf.WriteByte(0)
		}
	}
	return buf.Bytes()
}

// errCorrupt reports a malformed store file.
var errCorrupt = errors.New("hbase: corrupt store file")

// decodeCells parses a store file produced by encodeCells.
func decodeCells(data []byte) ([]Cell, error) {
	if len(data) < 4 {
		return nil, errCorrupt
	}
	n := binary.BigEndian.Uint32(data[:4])
	data = data[4:]
	cells := make([]Cell, 0, n)
	readField := func() ([]byte, error) {
		if len(data) < 4 {
			return nil, errCorrupt
		}
		l := binary.BigEndian.Uint32(data[:4])
		data = data[4:]
		if uint32(len(data)) < l {
			return nil, errCorrupt
		}
		f := append([]byte(nil), data[:l]...)
		data = data[l:]
		return f, nil
	}
	for i := uint32(0); i < n; i++ {
		row, err := readField()
		if err != nil {
			return nil, err
		}
		qual, err := readField()
		if err != nil {
			return nil, err
		}
		val, err := readField()
		if err != nil {
			return nil, err
		}
		if len(data) < 1 {
			return nil, errCorrupt
		}
		tomb := data[0] == 1
		data = data[1:]
		cells = append(cells, Cell{Row: row, Qual: qual, Value: val, Tomb: tomb})
	}
	if len(data) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", errCorrupt, len(data))
	}
	return cells, nil
}

// inRange reports whether key belongs to [start, end); an empty end
// means +infinity and an empty start means -infinity.
func inRange(key, start, end []byte) bool {
	if len(start) > 0 && bytes.Compare(key, start) < 0 {
		return false
	}
	if len(end) > 0 && bytes.Compare(key, end) >= 0 {
		return false
	}
	return true
}
