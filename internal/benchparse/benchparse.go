// Package benchparse parses `go test -bench` result lines: the single
// definition of benchmark-name normalization and value/unit pairing
// shared by cmd/benchjson (the committed perf trajectory) and
// cmd/allocgate (the CI allocation gate), so the two can never
// disagree about which benchmark a line belongs to or what it
// reported.
package benchparse

import (
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	// Name has the trailing -GOMAXPROCS stripped so it is stable
	// across machines.
	Name       string
	Iterations int64
	NsPerOp    float64
	BytesPerOp float64
	// AllocsPerOp is meaningful only when HasAllocs is set (the run
	// used -benchmem).
	AllocsPerOp float64
	HasAllocs   bool
	// Metrics holds custom units (samples/s, GFLOPS, records/s, ...);
	// nil when the line reported none.
	Metrics map[string]float64
}

// Parse parses one line of benchmark output; ok is false for anything
// that is not a benchmark result line.
func Parse(line string) (r Result, ok bool) {
	line = strings.TrimSpace(line)
	if !strings.HasPrefix(line, "Benchmark") {
		return Result{}, false
	}
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r = Result{Name: TrimProcSuffix(fields[0]), Iterations: iters, Metrics: map[string]float64{}}
	// The remainder is value/unit pairs: `1234 ns/op  5 B/op  ...`.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch fields[i+1] {
		case "ns/op":
			r.NsPerOp = v
		case "B/op":
			r.BytesPerOp = v
		case "allocs/op":
			r.AllocsPerOp = v
			r.HasAllocs = true
		default:
			r.Metrics[fields[i+1]] = v
		}
	}
	if len(r.Metrics) == 0 {
		r.Metrics = nil
	}
	return r, true
}

// TrimProcSuffix strips the trailing -GOMAXPROCS from a benchmark name
// so keys and pins are stable across machines.
func TrimProcSuffix(name string) string {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}
