package benchparse

import "testing"

func TestParse(t *testing.T) {
	r, ok := Parse("BenchmarkBusPublishConsume-8   \t  100000\t       496.6 ns/op\t   2013865 records/s\t      41 B/op\t       0 allocs/op")
	if !ok {
		t.Fatal("line not recognized")
	}
	if r.Name != "BenchmarkBusPublishConsume" {
		t.Fatalf("name = %q", r.Name)
	}
	if r.Iterations != 100000 || r.NsPerOp != 496.6 || r.BytesPerOp != 41 {
		t.Fatalf("parsed = %+v", r)
	}
	if !r.HasAllocs || r.AllocsPerOp != 0 {
		t.Fatalf("allocs = %+v", r)
	}
	if r.Metrics["records/s"] != 2013865 {
		t.Fatalf("metrics = %v", r.Metrics)
	}
}

func TestParseWithoutBenchmem(t *testing.T) {
	r, ok := Parse("BenchmarkMulInto/64x100x10-4  1000  31381 ns/op  4.134 GFLOPS")
	if !ok {
		t.Fatal("line not recognized")
	}
	if r.HasAllocs {
		t.Fatal("HasAllocs set without allocs/op column")
	}
	if r.Name != "BenchmarkMulInto/64x100x10" {
		t.Fatalf("name = %q", r.Name)
	}
	if r.Metrics["GFLOPS"] != 4.134 {
		t.Fatalf("metrics = %v", r.Metrics)
	}
}

func TestParseRejectsNonBenchmarkLines(t *testing.T) {
	for _, line := range []string{
		"goos: linux",
		"PASS",
		"ok  \trepro/internal/bus\t0.067s",
		"BenchmarkTruncated 12",
		"Benchmark notanumber 1 ns/op x",
	} {
		if _, ok := Parse(line); ok {
			t.Fatalf("line %q parsed as a benchmark", line)
		}
	}
}

func TestTrimProcSuffix(t *testing.T) {
	for in, want := range map[string]string{
		"BenchmarkX-8":            "BenchmarkX",
		"BenchmarkX":              "BenchmarkX",
		"BenchmarkX/m=100-16":     "BenchmarkX/m=100",
		"BenchmarkX/shape-a":      "BenchmarkX/shape-a",
		"BenchmarkMul/64x10x10-4": "BenchmarkMul/64x10x10",
	} {
		if got := TrimProcSuffix(in); got != want {
			t.Fatalf("TrimProcSuffix(%q) = %q, want %q", in, got, want)
		}
	}
}
