// Package rpc is the in-process transport connecting the simulated
// cluster's nodes: ZooKeeper, HDFS namenode/datanodes, the HBase
// master and region servers, and the OpenTSDB daemons all expose
// handlers on a shared Network and call each other through it.
//
// The transport models the properties the paper's findings hinge on:
//
//   - Bounded RPC queues. Every server has a finite inbound queue; a
//     call arriving at a full queue fails with ErrQueueOverflow, and a
//     server that overflows too often crashes (ErrServerDown) — the
//     exact failure mode §III-B reports for HBase RegionServers before
//     the buffering reverse proxy was added.
//   - Deadline-bounded, pipelined messaging. Call(ctx, …) honours
//     context cancellation end to end, and Go(ctx, …) returns a Future
//     so callers overlap many in-flight requests instead of blocking
//     one round trip at a time — the shape that lets the storage tier
//     absorb the paper's 120k writes/sec.
//   - Configurable per-call latency, so experiments can model network
//     round trips without real sockets.
//
// Handlers run on a bounded worker pool per server, mirroring an RPC
// handler thread pool. The caller's context is threaded into the
// handler, so a deadline set at the proxy propagates through a TSD
// into its HBase client calls.
//
// # Shutdown protocol
//
// Servers move through running → draining → stopped. Drain (and the
// stop underlying Remove/Close) first flips the state under a write
// lock — enqueuers hold the read lock while sending, so once the flip
// lands no sender can be mid-send — then flushes queued calls and
// joins the workers. New enqueues are rejected with ErrServerDraining
// or ErrServerStopped instead of racing a channel close; the
// "send on closed channel" crash of the synchronous fabric is
// impossible by construction. Crash remains the abrupt variant:
// queued and in-flight calls fail with ErrServerDown.
package rpc

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/clock"
	"repro/internal/faultinject"
	"repro/internal/telemetry"
)

// Errors surfaced by the transport.
var (
	ErrUnknownAddr    = errors.New("rpc: unknown address")
	ErrQueueOverflow  = errors.New("rpc: inbound queue overflow")
	ErrServerDown     = errors.New("rpc: server down")
	ErrServerStopped  = errors.New("rpc: server stopped")
	ErrServerDraining = errors.New("rpc: server draining")
	ErrNetworkClosed  = errors.New("rpc: network closed")
)

// Handler processes one request. The context carries the caller's
// deadline and cancellation; handlers that issue further RPCs should
// pass it along. Implementations must be safe for concurrent use (the
// worker pool invokes them in parallel).
type Handler func(ctx context.Context, method string, payload any) (any, error)

// ServerConfig bounds a server's inbound processing.
type ServerConfig struct {
	// QueueCap is the inbound queue capacity (default 256).
	QueueCap int
	// Workers is the handler pool size (default 4).
	Workers int
	// CrashOnOverflow, when > 0, crashes the server after that many
	// cumulative queue overflows — the RegionServer failure mode from
	// §III-B. Zero disables crashing.
	CrashOnOverflow int64
	// OnCrash, when set, runs (once, on its own goroutine) after the
	// server crashes, letting the owning node drop liveness leases.
	OnCrash func()
}

func (c ServerConfig) withDefaults() ServerConfig {
	if c.QueueCap <= 0 {
		c.QueueCap = 256
	}
	if c.Workers <= 0 {
		c.Workers = 4
	}
	return c
}

// result is one call's outcome.
type result struct {
	value any
	err   error
}

// Future is the handle for an asynchronous call issued with Go. It is
// resolved exactly once; any number of goroutines may wait on it.
type Future struct {
	done chan struct{}
	once sync.Once
	res  result
}

func newFuture() *Future {
	return &Future{done: make(chan struct{})}
}

// resolved returns a future already carrying err (enqueue-time
// failures).
func resolved(err error) *Future {
	f := newFuture()
	f.resolve(nil, err)
	return f
}

func (f *Future) resolve(v any, err error) {
	f.once.Do(func() {
		f.res = result{value: v, err: err}
		close(f.done)
	})
}

// Done returns a channel closed when the call completes.
func (f *Future) Done() <-chan struct{} { return f.done }

// Result blocks until the call completes and returns its outcome.
func (f *Future) Result() (any, error) {
	<-f.done
	return f.res.value, f.res.err
}

// Wait blocks until the call completes or ctx is done, whichever comes
// first. On early cancellation the call keeps executing server-side;
// only the wait is abandoned.
func (f *Future) Wait(ctx context.Context) (any, error) {
	select {
	case <-f.done:
		return f.res.value, f.res.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// call is one queued request.
type call struct {
	ctx     context.Context
	method  string
	payload any
	fut     *Future
}

// serverState is the Drain/Close lifecycle.
type serverState int32

const (
	stateRunning serverState = iota
	stateDraining
	stateStopped
)

// Server is one addressable node on the Network.
type Server struct {
	addr    string
	cfg     ServerConfig
	handler Handler

	// mu guards state against enqueue: senders hold the read lock
	// across the (state check, channel send) pair, so a state flip
	// under the write lock proves no sender is mid-send. This is what
	// makes closing the queue safe.
	mu    sync.RWMutex
	state serverState

	queue    chan *call
	crashed  atomic.Bool
	workers  sync.WaitGroup // handler pool
	inflight sync.WaitGroup // queued + executing calls

	// drainMu/drainIdle share one idle-waiter goroutine across
	// concurrent or retried Drain calls, so a drain that times out
	// against a wedged server doesn't leak a goroutine per attempt.
	drainMu   sync.Mutex
	drainIdle chan struct{}

	// Telemetry.
	Handled   telemetry.Counter
	Overflows telemetry.Counter
	Depth     telemetry.Gauge
}

// Addr returns the server's network address.
func (s *Server) Addr() string { return s.addr }

// Crashed reports whether the server has crashed (queue-overflow or
// injected).
func (s *Server) Crashed() bool { return s.crashed.Load() }

// enqueue admits one call, failing fast on overflow or shutdown.
func (s *Server) enqueue(c *call) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.crashed.Load() {
		return fmt.Errorf("%w: %s", ErrServerDown, s.addr)
	}
	switch s.state {
	case stateDraining:
		return fmt.Errorf("%w: %s", ErrServerDraining, s.addr)
	case stateStopped:
		return fmt.Errorf("%w: %s", ErrServerStopped, s.addr)
	}
	// Count the call before the send: a worker may dequeue (and Done)
	// the instant it lands in the channel.
	s.inflight.Add(1)
	select {
	case s.queue <- c:
		s.Depth.Inc()
		return nil
	default:
		s.inflight.Done()
		s.Overflows.Inc()
		if t := s.cfg.CrashOnOverflow; t > 0 && s.Overflows.Value() >= t {
			s.Crash()
		}
		return fmt.Errorf("%w: %s", ErrQueueOverflow, s.addr)
	}
}

// Crash marks the server dead immediately, as failure injection.
// Queued calls fail with ErrServerDown.
func (s *Server) Crash() {
	if s.crashed.CompareAndSwap(false, true) {
		s.rejectQueued()
		if s.cfg.OnCrash != nil {
			go s.cfg.OnCrash()
		}
	}
}

// rejectQueued fails queued calls after a crash. Workers racing on the
// same queue reject concurrently (they check crashed before handling).
func (s *Server) rejectQueued() {
	for {
		select {
		case c, ok := <-s.queue:
			if !ok {
				return // already stopped and flushed
			}
			s.Depth.Dec()
			c.fut.resolve(nil, fmt.Errorf("%w: %s", ErrServerDown, s.addr))
			s.inflight.Done()
		default:
			return
		}
	}
}

// Drain gracefully quiesces the server: new enqueues are rejected with
// ErrServerDraining while queued and executing calls run to
// completion. It returns nil once the server is idle, or ctx.Err() if
// the deadline expires first (the server stays draining).
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	if s.state == stateRunning {
		s.state = stateDraining
	}
	s.mu.Unlock()
	s.drainMu.Lock()
	idle := s.drainIdle
	if idle == nil {
		idle = make(chan struct{})
		s.drainIdle = idle
		go func() {
			s.inflight.Wait()
			s.drainMu.Lock()
			s.drainIdle = nil
			s.drainMu.Unlock()
			close(idle)
		}()
	}
	s.drainMu.Unlock()
	select {
	case <-idle:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// stop ends the server: no new enqueues, queued calls are still
// handled (flushed) by the workers, then the pool exits. Safe to call
// multiple times and concurrently with enqueuers — the write lock
// serialises against in-progress sends, so the channel close below
// can never race a sender.
func (s *Server) stop() {
	s.mu.Lock()
	if s.state == stateStopped {
		s.mu.Unlock()
		return
	}
	s.state = stateStopped
	s.mu.Unlock()
	close(s.queue)
	s.workers.Wait()
}

// serve runs one worker: dequeue, handle, resolve.
func (s *Server) serve() {
	defer s.workers.Done()
	for c := range s.queue {
		s.Depth.Dec()
		if s.crashed.Load() {
			c.fut.resolve(nil, fmt.Errorf("%w: %s", ErrServerDown, s.addr))
			s.inflight.Done()
			continue
		}
		if err := c.ctx.Err(); err != nil {
			// The caller's deadline expired while the call sat queued;
			// don't burn handler time on it.
			c.fut.resolve(nil, err)
			s.inflight.Done()
			continue
		}
		v, err := s.handler(c.ctx, c.method, c.payload)
		s.Handled.Inc()
		c.fut.resolve(v, err)
		s.inflight.Done()
	}
}

// Network connects servers by address. It is safe for concurrent use.
type Network struct {
	mu      sync.RWMutex
	servers map[string]*Server
	latency time.Duration
	clk     clock.Clock
	closed  bool

	// faults, when set, is consulted on every outgoing call (op
	// "rpc/<addr>/<method>"). Nil when chaos is off: one atomic load.
	faults atomic.Pointer[faultinject.Injector]

	// routeMu guards the TCP bridge state (see transport.go): the
	// outbound prefix routes and the pooled peer connections.
	routeMu sync.RWMutex
	routes  []route
	peers   map[string]*peerConn

	// Calls counts every Call/Go attempt, including failures.
	Calls telemetry.Counter
}

// SetFaults installs (or, with nil, removes) a fault injector consulted
// on every outgoing call, with operations named "rpc/<addr>/<method>".
func (n *Network) SetFaults(f *faultinject.Injector) {
	n.faults.Store(f)
}

// NewNetwork returns a network with the given per-call latency (0 for
// none). A nil clk defaults to the real clock.
func NewNetwork(latency time.Duration, clk clock.Clock) *Network {
	if clk == nil {
		clk = clock.Real{}
	}
	return &Network{servers: make(map[string]*Server), latency: latency, clk: clk}
}

// Register creates and starts a server at addr. Registering an existing
// address replaces the old server (which is crashed and stopped).
func (n *Network) Register(addr string, handler Handler, cfg ServerConfig) (*Server, error) {
	cfg = cfg.withDefaults()
	s := &Server{addr: addr, cfg: cfg, handler: handler, queue: make(chan *call, cfg.QueueCap)}
	s.workers.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.serve()
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		s.stop()
		return nil, ErrNetworkClosed
	}
	if old, ok := n.servers[addr]; ok {
		old.Crash()
		go old.stop()
	}
	n.servers[addr] = s
	return s, nil
}

// Lookup returns the server at addr, if any.
func (n *Network) Lookup(addr string) (*Server, bool) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	s, ok := n.servers[addr]
	return s, ok
}

// Remove deregisters the server at addr and shuts it down gracefully:
// queued calls are flushed, new ones rejected.
func (n *Network) Remove(addr string) {
	n.mu.Lock()
	s, ok := n.servers[addr]
	if ok {
		delete(n.servers, addr)
	}
	n.mu.Unlock()
	if ok {
		s.stop()
	}
}

// Addrs returns the registered addresses (unordered).
func (n *Network) Addrs() []string {
	n.mu.RLock()
	defer n.mu.RUnlock()
	out := make([]string, 0, len(n.servers))
	for a := range n.servers {
		out = append(out, a)
	}
	return out
}

// Drain quiesces every server (see Server.Drain); the network stays
// open for lookups but servers reject new work until stopped.
func (n *Network) Drain(ctx context.Context) error {
	n.mu.RLock()
	servers := make([]*Server, 0, len(n.servers))
	for _, s := range n.servers {
		servers = append(servers, s)
	}
	n.mu.RUnlock()
	for _, s := range servers {
		if err := s.Drain(ctx); err != nil {
			return err
		}
	}
	return nil
}

// Close shuts every server down gracefully — queued calls are flushed,
// not dropped — and fails subsequent Call/Go/Register with
// ErrNetworkClosed.
func (n *Network) Close() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.closed = true
	servers := make([]*Server, 0, len(n.servers))
	for _, s := range n.servers {
		servers = append(servers, s)
	}
	n.servers = make(map[string]*Server)
	n.mu.Unlock()
	for _, s := range servers {
		s.stop()
	}
	n.ClosePeers()
}

// Call sends a request to addr and blocks until the response, the
// context's deadline, or its cancellation. A full destination queue
// fails with ErrQueueOverflow immediately (fail-fast, like an RPC
// rejection) and counts toward the server's crash threshold.
func (n *Network) Call(ctx context.Context, addr, method string, payload any) (any, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	return n.Go(ctx, addr, method, payload).Wait(ctx)
}

// Go issues a request asynchronously and returns its Future — the
// pipelining primitive. Enqueue failures (unknown address, overflow,
// server down, closed network, expired context) resolve the future
// immediately; it never blocks on the destination.
func (n *Network) Go(ctx context.Context, addr, method string, payload any) *Future {
	n.Calls.Inc()
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return resolved(err)
	}
	n.mu.RLock()
	if n.closed {
		n.mu.RUnlock()
		return resolved(ErrNetworkClosed)
	}
	s, ok := n.servers[addr]
	lat := n.latency
	n.mu.RUnlock()
	if !ok {
		// Not served here: forward along a configured route, so remote
		// processes look like locally registered servers to callers.
		if fwdAddr, endpoint, rok := n.lookupRoute(addr); rok {
			if f := n.faults.Load(); f.Active() > 0 {
				if d := f.Decide("rpc/" + addr + "/" + method); !d.Zero() && d.Err != nil {
					return resolved(d.Err)
				}
			}
			return n.goRemote(ctx, addr, fwdAddr, endpoint, method, payload)
		}
		return resolved(fmt.Errorf("%w: %s", ErrUnknownAddr, addr))
	}
	c := &call{ctx: ctx, method: method, payload: payload, fut: newFuture()}
	if f := n.faults.Load(); f.Active() > 0 {
		if d := f.Decide("rpc/" + addr + "/" + method); !d.Zero() {
			return n.faultedGo(ctx, f, d, s, c, lat)
		}
	}
	if lat > 0 {
		// Model the wire delay off the caller's goroutine so Go stays
		// non-blocking; the future resolves after delay + service.
		go func() {
			n.clk.Sleep(lat)
			if err := s.enqueue(c); err != nil {
				c.fut.resolve(nil, err)
			}
		}()
		return c.fut
	}
	if err := s.enqueue(c); err != nil {
		return resolved(err)
	}
	return c.fut
}

// faultedGo carries out an injected fault decision on an outgoing call
// off the caller's goroutine, keeping Go non-blocking.
func (n *Network) faultedGo(ctx context.Context, f *faultinject.Injector, d faultinject.Decision, s *Server, c *call, lat time.Duration) *Future {
	go func() {
		if errors.Is(d.Err, faultinject.ErrDropped) {
			// A dropped call models a lost packet: it never resolves on
			// its own, the caller only observes its own ctx. Without a
			// cancellable ctx there is nothing to wait on, so fail fast
			// rather than leak the goroutine.
			if ctx.Done() == nil {
				c.fut.resolve(nil, faultinject.ErrDropped)
				return
			}
			<-ctx.Done()
			c.fut.resolve(nil, ctx.Err())
			return
		}
		// Apply blocks for latency/stall and then surfaces the injected
		// error, if any; otherwise the call proceeds normally, delayed.
		if err := f.Apply(ctx, d); err != nil {
			c.fut.resolve(nil, err)
			return
		}
		if lat > 0 {
			n.clk.Sleep(lat)
		}
		if err := s.enqueue(c); err != nil {
			c.fut.resolve(nil, err)
		}
	}()
	return c.fut
}
