// Package rpc is the in-process transport connecting the simulated
// cluster's nodes: ZooKeeper, HDFS namenode/datanodes, the HBase
// master and region servers, and the OpenTSDB daemons all expose
// handlers on a shared Network and call each other through it.
//
// The transport models the two properties the paper's findings hinge
// on:
//
//   - Bounded RPC queues. Every server has a finite inbound queue; a
//     call arriving at a full queue fails with ErrQueueOverflow, and a
//     server that overflows too often crashes (ErrServerDown) — the
//     exact failure mode §III-B reports for HBase RegionServers before
//     the buffering reverse proxy was added.
//   - Configurable per-call latency, so experiments can model network
//     round trips without real sockets.
//
// Handlers run on a bounded worker pool per server, mirroring an RPC
// handler thread pool.
package rpc

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/clock"
	"repro/internal/telemetry"
)

// Errors surfaced by the transport.
var (
	ErrUnknownAddr   = errors.New("rpc: unknown address")
	ErrQueueOverflow = errors.New("rpc: inbound queue overflow")
	ErrServerDown    = errors.New("rpc: server down")
	ErrServerStopped = errors.New("rpc: server stopped")
	ErrNetworkClosed = errors.New("rpc: network closed")
)

// Handler processes one request. Implementations must be safe for
// concurrent use (the worker pool invokes them in parallel).
type Handler func(method string, payload any) (any, error)

// ServerConfig bounds a server's inbound processing.
type ServerConfig struct {
	// QueueCap is the inbound queue capacity (default 256).
	QueueCap int
	// Workers is the handler pool size (default 4).
	Workers int
	// CrashOnOverflow, when > 0, crashes the server after that many
	// cumulative queue overflows — the RegionServer failure mode from
	// §III-B. Zero disables crashing.
	CrashOnOverflow int64
	// OnCrash, when set, runs (once, on its own goroutine) after the
	// server crashes, letting the owning node drop liveness leases.
	OnCrash func()
}

func (c ServerConfig) withDefaults() ServerConfig {
	if c.QueueCap <= 0 {
		c.QueueCap = 256
	}
	if c.Workers <= 0 {
		c.Workers = 4
	}
	return c
}

// call is one queued request/response exchange.
type call struct {
	method  string
	payload any
	resp    chan result
}

type result struct {
	value any
	err   error
}

// Server is one addressable node on the Network.
type Server struct {
	addr    string
	cfg     ServerConfig
	handler Handler
	queue   chan call
	stopped atomic.Bool
	crashed atomic.Bool
	wg      sync.WaitGroup

	// Telemetry.
	Handled   telemetry.Counter
	Overflows telemetry.Counter
	Depth     telemetry.Gauge
}

// Addr returns the server's network address.
func (s *Server) Addr() string { return s.addr }

// Crashed reports whether the server has crashed (queue-overflow or
// injected).
func (s *Server) Crashed() bool { return s.crashed.Load() }

// Crash marks the server dead immediately, as failure injection.
// Queued calls fail with ErrServerDown.
func (s *Server) Crash() {
	if s.crashed.CompareAndSwap(false, true) {
		s.drain()
		if s.cfg.OnCrash != nil {
			go s.cfg.OnCrash()
		}
	}
}

// drain rejects queued calls after a crash/stop.
func (s *Server) drain() {
	for {
		select {
		case c := <-s.queue:
			c.resp <- result{err: fmt.Errorf("%w: %s", ErrServerDown, s.addr)}
		default:
			return
		}
	}
}

// stop shuts down the worker pool (used by Network.Close and Remove).
func (s *Server) stop() {
	if s.stopped.CompareAndSwap(false, true) {
		close(s.queue)
		s.wg.Wait()
	}
}

// serve runs one worker: dequeue, handle, respond.
func (s *Server) serve() {
	defer s.wg.Done()
	for c := range s.queue {
		s.Depth.Dec()
		if s.crashed.Load() {
			c.resp <- result{err: fmt.Errorf("%w: %s", ErrServerDown, s.addr)}
			continue
		}
		v, err := s.handler(c.method, c.payload)
		s.Handled.Inc()
		c.resp <- result{value: v, err: err}
	}
}

// Network connects servers by address. It is safe for concurrent use.
type Network struct {
	mu      sync.RWMutex
	servers map[string]*Server
	latency time.Duration
	clk     clock.Clock
	closed  bool

	// Calls counts every Call attempt, including failures.
	Calls telemetry.Counter
}

// NewNetwork returns a network with the given per-call latency (0 for
// none). A nil clk defaults to the real clock.
func NewNetwork(latency time.Duration, clk clock.Clock) *Network {
	if clk == nil {
		clk = clock.Real{}
	}
	return &Network{servers: make(map[string]*Server), latency: latency, clk: clk}
}

// Register creates and starts a server at addr. Registering an existing
// address replaces the old server (which is stopped).
func (n *Network) Register(addr string, handler Handler, cfg ServerConfig) (*Server, error) {
	cfg = cfg.withDefaults()
	s := &Server{addr: addr, cfg: cfg, handler: handler, queue: make(chan call, cfg.QueueCap)}
	s.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.serve()
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		s.stop()
		return nil, ErrNetworkClosed
	}
	if old, ok := n.servers[addr]; ok {
		old.Crash()
		go old.stop()
	}
	n.servers[addr] = s
	return s, nil
}

// Lookup returns the server at addr, if any.
func (n *Network) Lookup(addr string) (*Server, bool) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	s, ok := n.servers[addr]
	return s, ok
}

// Remove stops and deregisters the server at addr.
func (n *Network) Remove(addr string) {
	n.mu.Lock()
	s, ok := n.servers[addr]
	if ok {
		delete(n.servers, addr)
	}
	n.mu.Unlock()
	if ok {
		s.Crash()
		s.stop()
	}
}

// Addrs returns the registered addresses (unordered).
func (n *Network) Addrs() []string {
	n.mu.RLock()
	defer n.mu.RUnlock()
	out := make([]string, 0, len(n.servers))
	for a := range n.servers {
		out = append(out, a)
	}
	return out
}

// Close stops every server; subsequent calls fail.
func (n *Network) Close() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.closed = true
	servers := make([]*Server, 0, len(n.servers))
	for _, s := range n.servers {
		servers = append(servers, s)
	}
	n.servers = make(map[string]*Server)
	n.mu.Unlock()
	for _, s := range servers {
		s.Crash()
		s.stop()
	}
}

// Call sends a synchronous request to addr. It applies the network
// latency, then enqueues at the destination; a full queue returns
// ErrQueueOverflow immediately (fail-fast, like an RPC rejection) and
// counts toward the server's crash threshold.
func (n *Network) Call(addr, method string, payload any) (any, error) {
	n.Calls.Inc()
	n.mu.RLock()
	if n.closed {
		n.mu.RUnlock()
		return nil, ErrNetworkClosed
	}
	s, ok := n.servers[addr]
	lat := n.latency
	n.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownAddr, addr)
	}
	if lat > 0 {
		n.clk.Sleep(lat)
	}
	if s.crashed.Load() {
		return nil, fmt.Errorf("%w: %s", ErrServerDown, s.addr)
	}
	if s.stopped.Load() {
		return nil, fmt.Errorf("%w: %s", ErrServerStopped, s.addr)
	}
	c := call{method: method, payload: payload, resp: make(chan result, 1)}
	select {
	case s.queue <- c:
		s.Depth.Inc()
	default:
		s.Overflows.Inc()
		if t := s.cfg.CrashOnOverflow; t > 0 && s.Overflows.Value() >= t {
			s.Crash()
		}
		return nil, fmt.Errorf("%w: %s", ErrQueueOverflow, s.addr)
	}
	r := <-c.resp
	return r.value, r.err
}
