package rpc

import (
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"
)

type echoPayload struct {
	N int
	S string
}

func init() { gob.Register(&echoPayload{}) }

// startServerNet registers handler at addr on a fresh network and
// serves it over a loopback TCP listener.
func startServerNet(t *testing.T, addr string, handler Handler) (*Network, *Transport) {
	t.Helper()
	n := NewNetwork(0, nil)
	if _, err := n.Register(addr, handler, ServerConfig{}); err != nil {
		t.Fatalf("register: %v", err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	tr := ServeTCP(n, lis)
	t.Cleanup(func() { tr.Close(); n.Close() })
	return n, tr
}

func TestTransportRoundTrip(t *testing.T) {
	_, tr := startServerNet(t, "echo", func(ctx context.Context, method string, payload any) (any, error) {
		p := payload.(*echoPayload)
		return &echoPayload{N: p.N + 1, S: p.S + "-" + method}, nil
	})

	client := NewNetwork(0, nil)
	defer client.Close()
	client.AddRoute("echo", tr.Addr().String())

	v, err := client.Call(context.Background(), "echo", "bump", &echoPayload{N: 41, S: "x"})
	if err != nil {
		t.Fatalf("call: %v", err)
	}
	got := v.(*echoPayload)
	if got.N != 42 || got.S != "x-bump" {
		t.Fatalf("got %+v", got)
	}
}

func TestTransportPrefixStrip(t *testing.T) {
	_, tr := startServerNet(t, "tsd/tsd-1", func(ctx context.Context, method string, payload any) (any, error) {
		return "ok", nil
	})

	client := NewNetwork(0, nil)
	defer client.Close()
	// A "/"-terminated prefix namespaces the remote address space.
	client.AddRoute("store-1/", tr.Addr().String())

	if _, err := client.Call(context.Background(), "store-1/tsd/tsd-1", "q", nil); err != nil {
		t.Fatalf("stripped route: %v", err)
	}
	// Unrouted addresses still fail fast.
	if _, err := client.Call(context.Background(), "store-2/tsd/tsd-1", "q", nil); !errors.Is(err, ErrUnknownAddr) {
		t.Fatalf("want ErrUnknownAddr, got %v", err)
	}
}

func TestTransportWireErrors(t *testing.T) {
	sentinel := errors.New("transport_test: fenced")
	RegisterWireError(sentinel)
	_, tr := startServerNet(t, "srv", func(ctx context.Context, method string, payload any) (any, error) {
		switch method {
		case "fenced":
			return nil, fmt.Errorf("wrapped: %w", sentinel)
		case "plain":
			return nil, errors.New("plain failure")
		default:
			return nil, nil
		}
	})

	client := NewNetwork(0, nil)
	defer client.Close()
	client.AddRoute("srv", tr.Addr().String())

	_, err := client.Call(context.Background(), "srv", "fenced", nil)
	if !errors.Is(err, sentinel) {
		t.Fatalf("sentinel should survive the wire, got %v", err)
	}
	if want := "wrapped: transport_test: fenced"; err.Error() != want {
		t.Fatalf("message %q, want %q", err.Error(), want)
	}
	_, err = client.Call(context.Background(), "srv", "plain", nil)
	if err == nil || err.Error() != "plain failure" {
		t.Fatalf("plain error: %v", err)
	}
	// Unknown remote address maps back to ErrUnknownAddr.
	_, err = client.Call(context.Background(), "srv", "x", nil)
	if err != nil {
		t.Fatalf("nil result round trip: %v", err)
	}
}

func TestTransportConcurrentPipelining(t *testing.T) {
	_, tr := startServerNet(t, "slow", func(ctx context.Context, method string, payload any) (any, error) {
		time.Sleep(2 * time.Millisecond)
		return payload, nil
	})
	client := NewNetwork(0, nil)
	defer client.Close()
	client.AddRoute("slow", tr.Addr().String())

	const calls = 64
	var wg sync.WaitGroup
	errs := make(chan error, calls)
	for i := 0; i < calls; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err := client.Call(context.Background(), "slow", "m", &echoPayload{N: i})
			if err != nil {
				errs <- err
				return
			}
			if v.(*echoPayload).N != i {
				errs <- fmt.Errorf("mismatched response: got %d want %d", v.(*echoPayload).N, i)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestTransportDeadlinePropagates(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	_, tr := startServerNet(t, "hang", func(ctx context.Context, method string, payload any) (any, error) {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-release:
			return nil, nil
		}
	})
	client := NewNetwork(0, nil)
	defer client.Close()
	client.AddRoute("hang", tr.Addr().String())

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := client.Call(ctx, "hang", "m", nil)
	if err == nil {
		t.Fatal("expected deadline error")
	}
	if time.Since(start) > 2*time.Second {
		t.Fatalf("deadline did not propagate; took %v", time.Since(start))
	}
}

func TestTransportPeerCrashFailsFast(t *testing.T) {
	_, tr := startServerNet(t, "up", func(ctx context.Context, method string, payload any) (any, error) {
		return "ok", nil
	})
	client := NewNetwork(0, nil)
	defer client.Close()
	client.AddRoute("up", tr.Addr().String())
	if _, err := client.Call(context.Background(), "up", "m", nil); err != nil {
		t.Fatalf("warmup: %v", err)
	}
	tr.Close()
	// The pooled connection is dead: calls fail with a down-class
	// error (immediately or after a failed redial), never hang.
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, err := client.Call(context.Background(), "up", "m", nil)
		if errors.Is(err, ErrServerDown) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("want ErrServerDown-class error, got %v", err)
		}
	}
}
