package rpc

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func echoHandler(_ context.Context, method string, payload any) (any, error) {
	return fmt.Sprintf("%s:%v", method, payload), nil
}

func ctx() context.Context { return context.Background() }

func TestCallRoundTrip(t *testing.T) {
	n := NewNetwork(0, nil)
	defer n.Close()
	if _, err := n.Register("a", echoHandler, ServerConfig{}); err != nil {
		t.Fatal(err)
	}
	got, err := n.Call(ctx(), "a", "ping", 42)
	if err != nil {
		t.Fatal(err)
	}
	if got != "ping:42" {
		t.Fatalf("got %v", got)
	}
	if n.Calls.Value() != 1 {
		t.Fatal("Calls counter wrong")
	}
}

func TestUnknownAddress(t *testing.T) {
	n := NewNetwork(0, nil)
	defer n.Close()
	if _, err := n.Call(ctx(), "ghost", "x", nil); !errors.Is(err, ErrUnknownAddr) {
		t.Fatalf("err = %v, want ErrUnknownAddr", err)
	}
}

func TestHandlerErrorsPropagate(t *testing.T) {
	n := NewNetwork(0, nil)
	defer n.Close()
	boom := errors.New("boom")
	_, err := n.Register("a", func(context.Context, string, any) (any, error) { return nil, boom }, ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Call(ctx(), "a", "x", nil); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
}

func TestNilContextDefaults(t *testing.T) {
	n := NewNetwork(0, nil)
	defer n.Close()
	if _, err := n.Register("a", echoHandler, ServerConfig{}); err != nil {
		t.Fatal(err)
	}
	//nolint:staticcheck // exercising the nil-context tolerance on purpose
	if _, err := n.Call(nil, "a", "x", nil); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentCalls(t *testing.T) {
	n := NewNetwork(0, nil)
	defer n.Close()
	var handled atomic.Int64
	_, err := n.Register("a", func(context.Context, string, any) (any, error) {
		handled.Add(1)
		return nil, nil
	}, ServerConfig{Workers: 8, QueueCap: 1024})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	const calls = 500
	errs := make(chan error, calls)
	for i := 0; i < calls; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := n.Call(ctx(), "a", "x", nil); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if handled.Load() != calls {
		t.Fatalf("handled %d, want %d", handled.Load(), calls)
	}
}

func TestGoPipelinesCalls(t *testing.T) {
	n := NewNetwork(0, nil)
	defer n.Close()
	// A single worker with per-call service time: N pipelined calls
	// complete without the caller blocking between enqueues.
	if _, err := n.Register("a", echoHandler, ServerConfig{Workers: 4, QueueCap: 64}); err != nil {
		t.Fatal(err)
	}
	const calls = 32
	futs := make([]*Future, calls)
	for i := range futs {
		futs[i] = n.Go(ctx(), "a", "m", i)
	}
	for i, f := range futs {
		v, err := f.Result()
		if err != nil {
			t.Fatal(err)
		}
		if v != fmt.Sprintf("m:%d", i) {
			t.Fatalf("future %d = %v", i, v)
		}
	}
}

func TestFutureEnqueueFailureResolvesImmediately(t *testing.T) {
	n := NewNetwork(0, nil)
	defer n.Close()
	f := n.Go(ctx(), "ghost", "x", nil)
	select {
	case <-f.Done():
	case <-time.After(time.Second):
		t.Fatal("future for unknown address never resolved")
	}
	if _, err := f.Result(); !errors.Is(err, ErrUnknownAddr) {
		t.Fatalf("err = %v, want ErrUnknownAddr", err)
	}
}

func TestFutureMultipleWaiters(t *testing.T) {
	n := NewNetwork(0, nil)
	defer n.Close()
	release := make(chan struct{})
	if _, err := n.Register("a", func(context.Context, string, any) (any, error) {
		<-release
		return "v", nil
	}, ServerConfig{}); err != nil {
		t.Fatal(err)
	}
	f := n.Go(ctx(), "a", "x", nil)
	var wg sync.WaitGroup
	errs := make(chan error, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err := f.Result()
			if err != nil || v != "v" {
				errs <- fmt.Errorf("got %v, %v", v, err)
			}
		}()
	}
	close(release)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestCallContextCancelledBeforeSend(t *testing.T) {
	n := NewNetwork(0, nil)
	defer n.Close()
	if _, err := n.Register("a", echoHandler, ServerConfig{}); err != nil {
		t.Fatal(err)
	}
	cctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := n.Call(cctx, "a", "x", nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestCallDeadlineWhileQueued(t *testing.T) {
	n := NewNetwork(0, nil)
	defer n.Close()
	block := make(chan struct{})
	entered := make(chan struct{}, 1)
	var ran atomic.Int64
	if _, err := n.Register("slow", func(_ context.Context, method string, _ any) (any, error) {
		if method == "y" {
			ran.Add(1)
		}
		entered <- struct{}{}
		<-block
		return nil, nil
	}, ServerConfig{Workers: 1, QueueCap: 4}); err != nil {
		t.Fatal(err)
	}
	// Occupy the single worker…
	first := n.Go(ctx(), "slow", "x", nil)
	select {
	case <-entered:
	case <-time.After(2 * time.Second):
		t.Fatal("worker never started")
	}
	// …then queue a call whose deadline lapses before service. The
	// bounded wait surfaces the deadline immediately…
	cctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	queued := n.Go(cctx, "slow", "y", nil)
	if _, err := queued.Wait(cctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Wait err = %v, want DeadlineExceeded", err)
	}
	// …and once the worker frees up it must skip the expired call
	// rather than burn handler time on it.
	close(block)
	if _, err := queued.Result(); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Result err = %v, want DeadlineExceeded", err)
	}
	if ran.Load() != 0 {
		t.Fatal("expired queued call must not reach the handler")
	}
	if _, err := first.Result(); err != nil {
		t.Fatal(err)
	}
}

func TestWaitAbandonsButCallCompletes(t *testing.T) {
	n := NewNetwork(0, nil)
	defer n.Close()
	release := make(chan struct{})
	var handled atomic.Int64
	if _, err := n.Register("a", func(context.Context, string, any) (any, error) {
		<-release
		handled.Add(1)
		return "late", nil
	}, ServerConfig{}); err != nil {
		t.Fatal(err)
	}
	f := n.Go(ctx(), "a", "x", nil)
	cctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	if _, err := f.Wait(cctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Wait err = %v, want DeadlineExceeded", err)
	}
	close(release)
	// The abandoned call still runs to completion server-side.
	if v, err := f.Result(); err != nil || v != "late" {
		t.Fatalf("Result = %v, %v", v, err)
	}
	if handled.Load() != 1 {
		t.Fatal("handler never ran")
	}
}

func TestQueueOverflowFailsFast(t *testing.T) {
	n := NewNetwork(0, nil)
	defer n.Close()
	block := make(chan struct{})
	entered := make(chan struct{}, 4)
	s, err := n.Register("slow", func(context.Context, string, any) (any, error) {
		entered <- struct{}{}
		<-block
		return nil, nil
	}, ServerConfig{Workers: 1, QueueCap: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Fill: 1 in-flight + 2 queued, then the next call overflows.
	futs := []*Future{n.Go(ctx(), "slow", "x", nil)}
	select {
	case <-entered:
	case <-time.After(2 * time.Second):
		t.Fatal("worker never started")
	}
	futs = append(futs, n.Go(ctx(), "slow", "x", nil), n.Go(ctx(), "slow", "x", nil))
	deadline := time.After(2 * time.Second)
	for s.Depth.Value() < 2 {
		select {
		case <-deadline:
			t.Fatal("queue never filled")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	if _, err := n.Call(ctx(), "slow", "x", nil); !errors.Is(err, ErrQueueOverflow) {
		t.Fatalf("err = %v, want ErrQueueOverflow", err)
	}
	if s.Overflows.Value() != 1 {
		t.Fatalf("Overflows = %d, want 1", s.Overflows.Value())
	}
	close(block)
	for _, f := range futs {
		if _, err := f.Result(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestCrashOnOverflowThreshold(t *testing.T) {
	n := NewNetwork(0, nil)
	defer n.Close()
	block := make(chan struct{})
	defer close(block)
	entered := make(chan struct{}, 4)
	s, err := n.Register("rs", func(context.Context, string, any) (any, error) {
		entered <- struct{}{}
		<-block
		return nil, nil
	}, ServerConfig{Workers: 1, QueueCap: 1, CrashOnOverflow: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Occupy the single worker, then fill the queue behind it.
	n.Go(ctx(), "rs", "x", nil)
	select {
	case <-entered:
	case <-time.After(2 * time.Second):
		t.Fatal("worker never started")
	}
	n.Go(ctx(), "rs", "x", nil)
	deadline := time.After(2 * time.Second)
	for s.Depth.Value() < 1 {
		select {
		case <-deadline:
			t.Fatal("queue never filled")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	// Three overflows crash the server — the §III-B RegionServer story.
	for i := 0; i < 3; i++ {
		if _, err := n.Call(ctx(), "rs", "x", nil); !errors.Is(err, ErrQueueOverflow) {
			t.Fatalf("call %d: err = %v, want overflow", i, err)
		}
	}
	if !s.Crashed() {
		t.Fatal("server must crash after reaching the overflow threshold")
	}
	if _, err := n.Call(ctx(), "rs", "x", nil); !errors.Is(err, ErrServerDown) {
		t.Fatalf("err = %v, want ErrServerDown", err)
	}
}

func TestInjectedCrash(t *testing.T) {
	n := NewNetwork(0, nil)
	defer n.Close()
	s, err := n.Register("a", echoHandler, ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	s.Crash()
	if _, err := n.Call(ctx(), "a", "x", nil); !errors.Is(err, ErrServerDown) {
		t.Fatalf("err = %v, want ErrServerDown", err)
	}
	if s.Addr() != "a" {
		t.Fatal("Addr wrong")
	}
}

func TestDrainFlushesAndRejects(t *testing.T) {
	n := NewNetwork(0, nil)
	defer n.Close()
	var handled atomic.Int64
	gate := make(chan struct{})
	s, err := n.Register("a", func(context.Context, string, any) (any, error) {
		<-gate
		handled.Add(1)
		return nil, nil
	}, ServerConfig{Workers: 2, QueueCap: 64})
	if err != nil {
		t.Fatal(err)
	}
	const calls = 16
	futs := make([]*Future, calls)
	for i := range futs {
		futs[i] = n.Go(ctx(), "a", "x", nil)
	}
	drained := make(chan error, 1)
	go func() { drained <- s.Drain(context.Background()) }()
	// New work is rejected as soon as the drain begins. Poll with Go —
	// an accepted call would block a synchronous Call forever while the
	// workers sit gated.
	accepted := futs
	deadline := time.After(2 * time.Second)
polling:
	for {
		f := n.Go(ctx(), "a", "x", nil)
		select {
		case <-f.Done():
			_, err := f.Result()
			if errors.Is(err, ErrServerDraining) {
				break polling
			}
			if !errors.Is(err, ErrQueueOverflow) {
				t.Fatalf("unexpected enqueue failure: %v", err)
			}
		default:
			accepted = append(accepted, f) // admitted before the drain flipped
		}
		select {
		case <-deadline:
			t.Fatal("drain never started rejecting")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	close(gate)
	if err := <-drained; err != nil {
		t.Fatal(err)
	}
	// Every accepted call was flushed, not dropped.
	for _, f := range accepted {
		if _, err := f.Result(); err != nil {
			t.Fatal(err)
		}
	}
	if handled.Load() < calls {
		t.Fatalf("handled %d, want >= %d", handled.Load(), calls)
	}
}

func TestDrainDeadline(t *testing.T) {
	n := NewNetwork(0, nil)
	defer n.Close()
	block := make(chan struct{})
	defer close(block)
	s, err := n.Register("a", func(context.Context, string, any) (any, error) {
		<-block
		return nil, nil
	}, ServerConfig{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	n.Go(ctx(), "a", "x", nil)
	cctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if err := s.Drain(cctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Drain err = %v, want DeadlineExceeded", err)
	}
}

func TestReRegisterReplacesServer(t *testing.T) {
	n := NewNetwork(0, nil)
	defer n.Close()
	if _, err := n.Register("a", func(context.Context, string, any) (any, error) { return "old", nil }, ServerConfig{}); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Register("a", func(context.Context, string, any) (any, error) { return "new", nil }, ServerConfig{}); err != nil {
		t.Fatal(err)
	}
	got, err := n.Call(ctx(), "a", "x", nil)
	if err != nil || got != "new" {
		t.Fatalf("got %v, %v", got, err)
	}
}

func TestRemove(t *testing.T) {
	n := NewNetwork(0, nil)
	defer n.Close()
	if _, err := n.Register("a", echoHandler, ServerConfig{}); err != nil {
		t.Fatal(err)
	}
	n.Remove("a")
	if _, err := n.Call(ctx(), "a", "x", nil); !errors.Is(err, ErrUnknownAddr) {
		t.Fatalf("err = %v, want ErrUnknownAddr", err)
	}
	n.Remove("a") // idempotent
	if _, ok := n.Lookup("a"); ok {
		t.Fatal("Lookup must miss after Remove")
	}
}

func TestNetworkClose(t *testing.T) {
	n := NewNetwork(0, nil)
	if _, err := n.Register("a", echoHandler, ServerConfig{}); err != nil {
		t.Fatal(err)
	}
	n.Close()
	if _, err := n.Call(ctx(), "a", "x", nil); !errors.Is(err, ErrNetworkClosed) {
		t.Fatalf("err = %v, want ErrNetworkClosed", err)
	}
	if _, err := n.Register("b", echoHandler, ServerConfig{}); !errors.Is(err, ErrNetworkClosed) {
		t.Fatalf("register after close: %v", err)
	}
	n.Close() // idempotent
}

func TestCloseFlushesQueuedCalls(t *testing.T) {
	n := NewNetwork(0, nil)
	var handled atomic.Int64
	if _, err := n.Register("a", func(context.Context, string, any) (any, error) {
		handled.Add(1)
		return nil, nil
	}, ServerConfig{Workers: 1, QueueCap: 64}); err != nil {
		t.Fatal(err)
	}
	const calls = 32
	futs := make([]*Future, calls)
	for i := range futs {
		futs[i] = n.Go(ctx(), "a", "x", nil)
	}
	n.Close()
	for _, f := range futs {
		if _, err := f.Result(); err != nil {
			t.Fatalf("queued call dropped at close: %v", err)
		}
	}
	if handled.Load() != calls {
		t.Fatalf("handled %d, want %d", handled.Load(), calls)
	}
}

func TestAddrs(t *testing.T) {
	n := NewNetwork(0, nil)
	defer n.Close()
	for _, a := range []string{"x", "y", "z"} {
		if _, err := n.Register(a, echoHandler, ServerConfig{}); err != nil {
			t.Fatal(err)
		}
	}
	if got := n.Addrs(); len(got) != 3 {
		t.Fatalf("Addrs = %v", got)
	}
}

func TestLatencyApplied(t *testing.T) {
	n := NewNetwork(20*time.Millisecond, nil)
	defer n.Close()
	if _, err := n.Register("a", echoHandler, ServerConfig{}); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := n.Call(ctx(), "a", "x", nil); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 15*time.Millisecond {
		t.Fatalf("latency not applied: %v", d)
	}
}

// TestShutdownStorm is the regression for the synchronous fabric's
// "send on closed channel" panic: servers crash, get removed,
// re-register and finally close while callers enqueue as fast as they
// can. Run with -race; any panic or race fails the test.
func TestShutdownStorm(t *testing.T) {
	n := NewNetwork(0, nil)
	const servers = 4
	addr := func(i int) string { return fmt.Sprintf("s%d", i) }
	for i := 0; i < servers; i++ {
		if _, err := n.Register(addr(i), echoHandler, ServerConfig{Workers: 2, QueueCap: 8}); err != nil {
			t.Fatal(err)
		}
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if w%2 == 0 {
					_, _ = n.Call(ctx(), addr(i%servers), "m", i)
				} else {
					f := n.Go(ctx(), addr(i%servers), "m", i)
					_, _ = f.Result()
				}
			}
		}(w)
	}
	// Churn the server set while the callers hammer it.
	for round := 0; round < 20; round++ {
		i := round % servers
		if s, ok := n.Lookup(addr(i)); ok && round%3 == 0 {
			s.Crash()
		}
		n.Remove(addr(i))
		if _, err := n.Register(addr(i), echoHandler, ServerConfig{Workers: 2, QueueCap: 8}); err != nil {
			t.Fatal(err)
		}
		time.Sleep(time.Millisecond)
	}
	n.Close()
	close(stop)
	wg.Wait()
}
