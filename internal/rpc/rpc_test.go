package rpc

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func echoHandler(method string, payload any) (any, error) {
	return fmt.Sprintf("%s:%v", method, payload), nil
}

func TestCallRoundTrip(t *testing.T) {
	n := NewNetwork(0, nil)
	defer n.Close()
	if _, err := n.Register("a", echoHandler, ServerConfig{}); err != nil {
		t.Fatal(err)
	}
	got, err := n.Call("a", "ping", 42)
	if err != nil {
		t.Fatal(err)
	}
	if got != "ping:42" {
		t.Fatalf("got %v", got)
	}
	if n.Calls.Value() != 1 {
		t.Fatal("Calls counter wrong")
	}
}

func TestUnknownAddress(t *testing.T) {
	n := NewNetwork(0, nil)
	defer n.Close()
	if _, err := n.Call("ghost", "x", nil); !errors.Is(err, ErrUnknownAddr) {
		t.Fatalf("err = %v, want ErrUnknownAddr", err)
	}
}

func TestHandlerErrorsPropagate(t *testing.T) {
	n := NewNetwork(0, nil)
	defer n.Close()
	boom := errors.New("boom")
	_, err := n.Register("a", func(string, any) (any, error) { return nil, boom }, ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Call("a", "x", nil); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
}

func TestConcurrentCalls(t *testing.T) {
	n := NewNetwork(0, nil)
	defer n.Close()
	var handled atomic.Int64
	_, err := n.Register("a", func(string, any) (any, error) {
		handled.Add(1)
		return nil, nil
	}, ServerConfig{Workers: 8, QueueCap: 1024})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	const calls = 500
	errs := make(chan error, calls)
	for i := 0; i < calls; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := n.Call("a", "x", nil); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if handled.Load() != calls {
		t.Fatalf("handled %d, want %d", handled.Load(), calls)
	}
}

func TestQueueOverflowFailsFast(t *testing.T) {
	n := NewNetwork(0, nil)
	defer n.Close()
	block := make(chan struct{})
	entered := make(chan struct{}, 4)
	s, err := n.Register("slow", func(string, any) (any, error) {
		entered <- struct{}{}
		<-block
		return nil, nil
	}, ServerConfig{Workers: 1, QueueCap: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Fill: 1 in-flight + 2 queued, then the next call overflows.
	done := make(chan error, 8)
	issue := func() {
		go func() {
			_, err := n.Call("slow", "x", nil)
			done <- err
		}()
	}
	issue() // occupies the worker
	select {
	case <-entered:
	case <-time.After(2 * time.Second):
		t.Fatal("worker never started")
	}
	issue()
	issue() // both sit in the queue
	deadline := time.After(2 * time.Second)
	for s.Depth.Value() < 2 {
		select {
		case <-deadline:
			t.Fatal("queue never filled")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	if _, err := n.Call("slow", "x", nil); !errors.Is(err, ErrQueueOverflow) {
		t.Fatalf("err = %v, want ErrQueueOverflow", err)
	}
	if s.Overflows.Value() != 1 {
		t.Fatalf("Overflows = %d, want 1", s.Overflows.Value())
	}
	close(block)
	for i := 0; i < 3; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func TestCrashOnOverflowThreshold(t *testing.T) {
	n := NewNetwork(0, nil)
	defer n.Close()
	block := make(chan struct{})
	defer close(block)
	entered := make(chan struct{}, 4)
	s, err := n.Register("rs", func(string, any) (any, error) {
		entered <- struct{}{}
		<-block
		return nil, nil
	}, ServerConfig{Workers: 1, QueueCap: 1, CrashOnOverflow: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Occupy the single worker, then fill the queue behind it.
	go n.Call("rs", "x", nil) //nolint:errcheck
	select {
	case <-entered:
	case <-time.After(2 * time.Second):
		t.Fatal("worker never started")
	}
	go n.Call("rs", "x", nil) //nolint:errcheck
	deadline := time.After(2 * time.Second)
	for s.Depth.Value() < 1 {
		select {
		case <-deadline:
			t.Fatal("queue never filled")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	// Three overflows crash the server — the §III-B RegionServer story.
	for i := 0; i < 3; i++ {
		if _, err := n.Call("rs", "x", nil); !errors.Is(err, ErrQueueOverflow) {
			t.Fatalf("call %d: err = %v, want overflow", i, err)
		}
	}
	if !s.Crashed() {
		t.Fatal("server must crash after reaching the overflow threshold")
	}
	if _, err := n.Call("rs", "x", nil); !errors.Is(err, ErrServerDown) {
		t.Fatalf("err = %v, want ErrServerDown", err)
	}
}

func TestInjectedCrash(t *testing.T) {
	n := NewNetwork(0, nil)
	defer n.Close()
	s, err := n.Register("a", echoHandler, ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	s.Crash()
	if _, err := n.Call("a", "x", nil); !errors.Is(err, ErrServerDown) {
		t.Fatalf("err = %v, want ErrServerDown", err)
	}
	if s.Addr() != "a" {
		t.Fatal("Addr wrong")
	}
}

func TestReRegisterReplacesServer(t *testing.T) {
	n := NewNetwork(0, nil)
	defer n.Close()
	if _, err := n.Register("a", func(string, any) (any, error) { return "old", nil }, ServerConfig{}); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Register("a", func(string, any) (any, error) { return "new", nil }, ServerConfig{}); err != nil {
		t.Fatal(err)
	}
	got, err := n.Call("a", "x", nil)
	if err != nil || got != "new" {
		t.Fatalf("got %v, %v", got, err)
	}
}

func TestRemove(t *testing.T) {
	n := NewNetwork(0, nil)
	defer n.Close()
	if _, err := n.Register("a", echoHandler, ServerConfig{}); err != nil {
		t.Fatal(err)
	}
	n.Remove("a")
	if _, err := n.Call("a", "x", nil); !errors.Is(err, ErrUnknownAddr) {
		t.Fatalf("err = %v, want ErrUnknownAddr", err)
	}
	n.Remove("a") // idempotent
	if _, ok := n.Lookup("a"); ok {
		t.Fatal("Lookup must miss after Remove")
	}
}

func TestNetworkClose(t *testing.T) {
	n := NewNetwork(0, nil)
	if _, err := n.Register("a", echoHandler, ServerConfig{}); err != nil {
		t.Fatal(err)
	}
	n.Close()
	if _, err := n.Call("a", "x", nil); !errors.Is(err, ErrNetworkClosed) {
		t.Fatalf("err = %v, want ErrNetworkClosed", err)
	}
	if _, err := n.Register("b", echoHandler, ServerConfig{}); !errors.Is(err, ErrNetworkClosed) {
		t.Fatalf("register after close: %v", err)
	}
	n.Close() // idempotent
}

func TestAddrs(t *testing.T) {
	n := NewNetwork(0, nil)
	defer n.Close()
	for _, a := range []string{"x", "y", "z"} {
		if _, err := n.Register(a, echoHandler, ServerConfig{}); err != nil {
			t.Fatal(err)
		}
	}
	if got := n.Addrs(); len(got) != 3 {
		t.Fatalf("Addrs = %v", got)
	}
}

func TestLatencyApplied(t *testing.T) {
	n := NewNetwork(20*time.Millisecond, nil)
	defer n.Close()
	if _, err := n.Register("a", echoHandler, ServerConfig{}); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := n.Call("a", "x", nil); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 15*time.Millisecond {
		t.Fatalf("latency not applied: %v", d)
	}
}
