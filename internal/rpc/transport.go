package rpc

// transport.go bridges the in-process fabric across real processes:
// a Network can serve its registered addresses over a TCP listener
// (gob-framed request/response with pipelining) and route outbound
// calls whose address is not registered locally to peer endpoints.
//
// The bridge keeps Go/Call semantics intact — callers still receive a
// Future, deadlines propagate (as a relative budget, so clock skew
// between nodes cannot widen them), and sentinel errors survive the
// wire: a registered error (ErrQueueOverflow, bus fencing errors, …)
// decoded on the caller's side matches errors.Is against the same
// sentinel it matched on the server, so failover and retry logic works
// unchanged whether a backend is a goroutine or another process.
//
// Routing is longest-prefix: AddRoute("store-1/", ep) forwards a call
// to "store-1/tsd/tsd-1" to ep as "tsd/tsd-1" (a prefix ending in "/"
// is stripped, namespacing the remote node's address space), while
// AddRoute("zk", ep) forwards "zk" verbatim. Locally registered
// servers always win over routes.

import (
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"time"
)

// ErrPeerUnreachable wraps dial/connection failures to a routed peer.
// It unwraps to ErrServerDown so existing failover paths (the query
// engine, the proxy) treat an unreachable process like a crashed
// in-process server.
var ErrPeerUnreachable = fmt.Errorf("%w: peer unreachable", ErrServerDown)

// wireRequest is one framed call.
type wireRequest struct {
	ID       uint64
	Addr     string
	Method   string
	BudgetMS int64 // remaining deadline budget; 0 = none
	Payload  any
}

// wireResponse resolves one framed call.
type wireResponse struct {
	ID      uint64
	Payload any
	ErrCode string // the matched sentinel's Error() text, "" when none
	ErrMsg  string // the full error text, "" on success
}

func init() {
	gob.Register(wireRequest{})
	gob.Register(wireResponse{})
	// Base payload types any handler may return as bare values.
	gob.Register(0)
	gob.Register(int64(0))
	gob.Register("")
	gob.Register(true)
	gob.Register([]byte(nil))
	gob.Register([]string(nil))
	gob.Register(map[string]string(nil))
	RegisterWireError(ErrUnknownAddr, ErrQueueOverflow, ErrServerDown,
		ErrServerStopped, ErrServerDraining, ErrNetworkClosed)
}

// wireErrors maps a sentinel's Error() text back to the sentinel, so
// decoded errors stay errors.Is-matchable across processes.
var (
	wireErrMu sync.RWMutex
	wireErrs  = map[string]error{}
)

// RegisterWireError makes errs survive the TCP bridge: a server-side
// error matching one of them (via errors.Is) decodes on the caller's
// side as an error that still matches it. Call from init; later
// registrations are safe but racing in-flight decodes see the old set.
func RegisterWireError(errs ...error) {
	wireErrMu.Lock()
	defer wireErrMu.Unlock()
	for _, e := range errs {
		wireErrs[e.Error()] = e
	}
}

// encodeWireError splits err into (code, message) for the wire.
func encodeWireError(err error) (code, msg string) {
	wireErrMu.RLock()
	defer wireErrMu.RUnlock()
	for c, sentinel := range wireErrs {
		if errors.Is(err, sentinel) {
			return c, err.Error()
		}
	}
	return "", err.Error()
}

// decodeWireError rebuilds a caller-side error from (code, message).
func decodeWireError(code, msg string) error {
	if code != "" {
		wireErrMu.RLock()
		sentinel, ok := wireErrs[code]
		wireErrMu.RUnlock()
		if ok {
			if msg == code {
				return sentinel
			}
			return &remoteError{msg: msg, base: sentinel}
		}
	}
	return &remoteError{msg: msg}
}

// remoteError is a decoded server-side error: the original text, plus
// the sentinel it matched (if registered) for errors.Is.
type remoteError struct {
	msg  string
	base error
}

func (e *remoteError) Error() string { return e.msg }
func (e *remoteError) Unwrap() error { return e.base }

// route forwards calls for one address prefix to a peer endpoint.
type route struct {
	prefix   string
	strip    bool // prefix ends in "/": forward addr minus prefix
	endpoint string
}

// AddRoute forwards calls to addresses starting with prefix to the
// TCP endpoint of another Network served with ServeTCP. A prefix
// ending in "/" is stripped from the forwarded address (namespacing);
// any other prefix forwards the address verbatim. Locally registered
// servers take precedence over routes; among routes the longest
// matching prefix wins. Re-adding a prefix replaces its endpoint.
func (n *Network) AddRoute(prefix, endpoint string) {
	n.routeMu.Lock()
	defer n.routeMu.Unlock()
	for i := range n.routes {
		if n.routes[i].prefix == prefix {
			n.routes[i].endpoint = endpoint
			return
		}
	}
	n.routes = append(n.routes, route{
		prefix:   prefix,
		strip:    strings.HasSuffix(prefix, "/"),
		endpoint: endpoint,
	})
}

// lookupRoute resolves addr against the route table.
func (n *Network) lookupRoute(addr string) (fwdAddr, endpoint string, ok bool) {
	n.routeMu.RLock()
	defer n.routeMu.RUnlock()
	best := -1
	for i := range n.routes {
		if strings.HasPrefix(addr, n.routes[i].prefix) {
			if best < 0 || len(n.routes[i].prefix) > len(n.routes[best].prefix) {
				best = i
			}
		}
	}
	if best < 0 {
		return "", "", false
	}
	fwdAddr = addr
	if n.routes[best].strip {
		fwdAddr = strings.TrimPrefix(addr, n.routes[best].prefix)
	}
	return fwdAddr, n.routes[best].endpoint, true
}

// goRemote issues a routed call through the peer connection pool.
func (n *Network) goRemote(ctx context.Context, addr, fwdAddr, endpoint, method string, payload any) *Future {
	p, err := n.peer(endpoint)
	if err != nil {
		return resolved(fmt.Errorf("%w: %s via %s: %v", ErrPeerUnreachable, addr, endpoint, err))
	}
	var budget int64
	if dl, ok := ctx.Deadline(); ok {
		budget = time.Until(dl).Milliseconds()
		if budget <= 0 {
			return resolved(context.DeadlineExceeded)
		}
	}
	return p.send(fwdAddr, method, budget, payload)
}

// peer returns (dialing on demand) the pooled connection to endpoint.
func (n *Network) peer(endpoint string) (*peerConn, error) {
	n.routeMu.Lock()
	if n.peers == nil {
		n.peers = make(map[string]*peerConn)
	}
	if p, ok := n.peers[endpoint]; ok && !p.dead() {
		n.routeMu.Unlock()
		return p, nil
	}
	n.routeMu.Unlock()
	// Dial outside the lock; losers of a racing dial are closed.
	conn, err := net.DialTimeout("tcp", endpoint, 3*time.Second)
	if err != nil {
		return nil, err
	}
	p := newPeerConn(conn)
	n.routeMu.Lock()
	if cur, ok := n.peers[endpoint]; ok && !cur.dead() {
		n.routeMu.Unlock()
		p.close(errors.New("rpc: duplicate dial"))
		return cur, nil
	}
	n.peers[endpoint] = p
	n.routeMu.Unlock()
	return p, nil
}

// ClosePeers tears down every pooled outbound connection. Subsequent
// routed calls redial.
func (n *Network) ClosePeers() {
	n.routeMu.Lock()
	peers := n.peers
	n.peers = nil
	n.routeMu.Unlock()
	for _, p := range peers {
		p.close(ErrNetworkClosed)
	}
}

// peerConn is one multiplexed client connection: many in-flight
// requests share it, matched back to futures by request id.
type peerConn struct {
	conn net.Conn

	encMu sync.Mutex // guards enc
	enc   *gob.Encoder

	mu      sync.Mutex
	nextID  uint64
	pending map[uint64]*Future
	closed  bool
}

func newPeerConn(conn net.Conn) *peerConn {
	p := &peerConn{
		conn:    conn,
		enc:     gob.NewEncoder(conn),
		pending: make(map[uint64]*Future),
	}
	go p.readLoop()
	return p
}

func (p *peerConn) dead() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.closed
}

// send frames one request and registers its future.
func (p *peerConn) send(addr, method string, budgetMS int64, payload any) *Future {
	fut := newFuture()
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		fut.resolve(nil, fmt.Errorf("%w: connection closed", ErrPeerUnreachable))
		return fut
	}
	p.nextID++
	id := p.nextID
	p.pending[id] = fut
	p.mu.Unlock()

	req := wireRequest{ID: id, Addr: addr, Method: method, BudgetMS: budgetMS, Payload: payload}
	p.encMu.Lock()
	err := p.enc.Encode(&req)
	p.encMu.Unlock()
	if err != nil {
		p.mu.Lock()
		delete(p.pending, id)
		p.mu.Unlock()
		// An encode error poisons the gob stream state; drop the conn.
		p.close(err)
		fut.resolve(nil, fmt.Errorf("%w: send: %v", ErrPeerUnreachable, err))
	}
	return fut
}

// readLoop resolves responses until the connection dies, then fails
// every pending future.
func (p *peerConn) readLoop() {
	dec := gob.NewDecoder(p.conn)
	for {
		var resp wireResponse
		if err := dec.Decode(&resp); err != nil {
			p.close(err)
			return
		}
		p.mu.Lock()
		fut, ok := p.pending[resp.ID]
		delete(p.pending, resp.ID)
		p.mu.Unlock()
		if !ok {
			continue
		}
		if resp.ErrMsg != "" {
			fut.resolve(nil, decodeWireError(resp.ErrCode, resp.ErrMsg))
		} else {
			fut.resolve(resp.Payload, nil)
		}
	}
}

// close fails all pending calls and closes the socket. Idempotent.
func (p *peerConn) close(cause error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	pending := p.pending
	p.pending = nil
	p.mu.Unlock()
	_ = p.conn.Close()
	for _, fut := range pending {
		fut.resolve(nil, fmt.Errorf("%w: %v", ErrPeerUnreachable, cause))
	}
}

// Transport serves a Network's registered addresses to remote callers.
type Transport struct {
	lis     net.Listener
	net     *Network
	mu      sync.Mutex
	conns   map[net.Conn]struct{}
	closed  bool
	serveWG sync.WaitGroup
}

// ServeTCP exposes n's registered servers on lis: every decoded
// request is dispatched through n.Go (queues, worker pools and fault
// injection all apply, exactly as for in-process callers) and its
// response framed back. Serving continues until Close.
func ServeTCP(n *Network, lis net.Listener) *Transport {
	t := &Transport{lis: lis, net: n, conns: make(map[net.Conn]struct{})}
	t.serveWG.Add(1)
	go t.acceptLoop()
	return t
}

// Addr returns the listener address (useful with ":0" listeners).
func (t *Transport) Addr() net.Addr { return t.lis.Addr() }

func (t *Transport) acceptLoop() {
	defer t.serveWG.Done()
	for {
		conn, err := t.lis.Accept()
		if err != nil {
			return
		}
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			_ = conn.Close()
			return
		}
		t.conns[conn] = struct{}{}
		t.mu.Unlock()
		t.serveWG.Add(1)
		go t.serveConn(conn)
	}
}

func (t *Transport) serveConn(conn net.Conn) {
	defer t.serveWG.Done()
	defer func() {
		t.mu.Lock()
		delete(t.conns, conn)
		t.mu.Unlock()
		_ = conn.Close()
	}()
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	var encMu sync.Mutex
	var calls sync.WaitGroup
	defer calls.Wait()
	for {
		var req wireRequest
		if err := dec.Decode(&req); err != nil {
			if err != io.EOF && !errors.Is(err, net.ErrClosed) {
				// A malformed frame poisons the stream; drop the conn
				// and let the peer redial.
				return
			}
			return
		}
		calls.Add(1)
		go func(req wireRequest) {
			defer calls.Done()
			ctx := context.Background()
			var cancel context.CancelFunc = func() {}
			if req.BudgetMS > 0 {
				ctx, cancel = context.WithTimeout(ctx, time.Duration(req.BudgetMS)*time.Millisecond)
			}
			v, err := t.net.Go(ctx, req.Addr, req.Method, req.Payload).Wait(ctx)
			cancel()
			resp := wireResponse{ID: req.ID, Payload: v}
			if err != nil {
				resp.Payload = nil
				resp.ErrCode, resp.ErrMsg = encodeWireError(err)
				if resp.ErrMsg == "" {
					resp.ErrMsg = "unknown error"
				}
			}
			encMu.Lock()
			encErr := enc.Encode(&resp)
			encMu.Unlock()
			if encErr != nil {
				// Undeliverable (conn gone or unregistered payload
				// type): close so the peer fails fast and redials. The
				// gob stream is not recoverable after a failed Encode.
				_ = conn.Close()
			}
		}(req)
	}
}

// Close stops accepting, closes every live connection and waits for
// in-flight handlers to finish framing.
func (t *Transport) Close() {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return
	}
	t.closed = true
	conns := make([]net.Conn, 0, len(t.conns))
	for c := range t.conns {
		conns = append(conns, c)
	}
	t.mu.Unlock()
	_ = t.lis.Close()
	for _, c := range conns {
		_ = c.Close()
	}
	t.serveWG.Wait()
}
