package rpc

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/faultinject"
)

func TestNetworkFaultErrorInjection(t *testing.T) {
	n := NewNetwork(0, nil)
	defer n.Close()
	if _, err := n.Register("tsd/0", echoHandler, ServerConfig{}); err != nil {
		t.Fatal(err)
	}
	inj := faultinject.New(1)
	n.SetFaults(inj)
	inj.Set("kill", faultinject.Rule{Op: "rpc/tsd/0/", ErrorRate: 1})

	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if _, err := n.Call(ctx, "tsd/0", "put", "x"); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}

	// Other addresses are unaffected.
	if _, err := n.Register("tsd/1", echoHandler, ServerConfig{}); err != nil {
		t.Fatal(err)
	}
	if v, err := n.Call(ctx, "tsd/1", "put", "x"); err != nil || v != "put:x" {
		t.Fatalf("unmatched addr: v=%v err=%v", v, err)
	}

	// Clearing the rule restores the faulted address.
	inj.Clear("kill")
	if v, err := n.Call(ctx, "tsd/0", "put", "x"); err != nil || v != "put:x" {
		t.Fatalf("after clear: v=%v err=%v", v, err)
	}
}

func TestNetworkFaultDropResolvesOnlyViaCtx(t *testing.T) {
	n := NewNetwork(0, nil)
	defer n.Close()
	if _, err := n.Register("tsd/0", echoHandler, ServerConfig{}); err != nil {
		t.Fatal(err)
	}
	inj := faultinject.New(1)
	n.SetFaults(inj)
	inj.Set("lossy", faultinject.Rule{Op: "rpc/", DropRate: 1})

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	fut := n.Go(ctx, "tsd/0", "put", "x")
	select {
	case <-fut.Done():
		t.Fatal("dropped call resolved before ctx expiry")
	case <-time.After(10 * time.Millisecond):
	}
	if _, err := fut.Result(); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
}

func TestNetworkFaultLatencyDelaysDelivery(t *testing.T) {
	n := NewNetwork(0, nil)
	defer n.Close()
	if _, err := n.Register("tsd/0", echoHandler, ServerConfig{}); err != nil {
		t.Fatal(err)
	}
	inj := faultinject.New(1)
	n.SetFaults(inj)
	inj.Set("slow", faultinject.Rule{Op: "rpc/", Latency: 30 * time.Millisecond})

	start := time.Now()
	v, err := n.Call(context.Background(), "tsd/0", "put", "x")
	if err != nil || v != "put:x" {
		t.Fatalf("v=%v err=%v", v, err)
	}
	if el := time.Since(start); el < 25*time.Millisecond {
		t.Fatalf("call completed in %v despite 30ms injected latency", el)
	}
}

func TestNetworkFaultsOffByDefaultAndRemovable(t *testing.T) {
	n := NewNetwork(0, nil)
	defer n.Close()
	if _, err := n.Register("a", echoHandler, ServerConfig{}); err != nil {
		t.Fatal(err)
	}
	if v, err := n.Call(context.Background(), "a", "m", 1); err != nil || v != "m:1" {
		t.Fatalf("no injector: v=%v err=%v", v, err)
	}
	inj := faultinject.New(1)
	inj.Set("all", faultinject.Rule{ErrorRate: 1})
	n.SetFaults(inj)
	if _, err := n.Call(context.Background(), "a", "m", 1); err == nil {
		t.Fatal("injector installed but no fault observed")
	}
	n.SetFaults(nil)
	if v, err := n.Call(context.Background(), "a", "m", 1); err != nil || v != "m:1" {
		t.Fatalf("after SetFaults(nil): v=%v err=%v", v, err)
	}
}
