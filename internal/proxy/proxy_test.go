package proxy

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/rpc"
	"repro/internal/tsdb"
)

// fakeTSDs registers n handlers that count points, optionally failing.
func fakeTSDs(t *testing.T, n int, fail func(addr string) error) (*rpc.Network, []string, *atomic.Int64, map[string]*atomic.Int64) {
	t.Helper()
	net := rpc.NewNetwork(0, nil)
	t.Cleanup(net.Close)
	total := &atomic.Int64{}
	per := make(map[string]*atomic.Int64)
	var addrs []string
	for i := 0; i < n; i++ {
		addr := "tsd/fake-" + string(rune('a'+i))
		cnt := &atomic.Int64{}
		per[addr] = cnt
		addrCopy := addr
		_, err := net.Register(addr, func(_ context.Context, method string, payload any) (any, error) {
			if fail != nil {
				if err := fail(addrCopy); err != nil {
					return nil, err
				}
			}
			pts := payload.(*tsdb.PutBatch).Points
			cnt.Add(int64(len(pts)))
			total.Add(int64(len(pts)))
			return nil, nil
		}, rpc.ServerConfig{QueueCap: 64, Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		addrs = append(addrs, addr)
	}
	return net, addrs, total, per
}

func somePoints(n int) []tsdb.Point {
	pts := make([]tsdb.Point, n)
	for i := range pts {
		pts[i] = tsdb.EnergyPoint(1, i, int64(i), float64(i))
	}
	return pts
}

func TestSubmitDeliversAll(t *testing.T) {
	net, addrs, total, _ := fakeTSDs(t, 2, nil)
	p, err := New(net, addrs, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := p.Submit(somePoints(50)); err != nil {
			t.Fatal(err)
		}
	}
	p.Close()
	if total.Load() != 500 {
		t.Fatalf("delivered %d points, want 500", total.Load())
	}
	if p.Accepted.Value() != 500 || p.Delivered.Value() != 500 || p.Dropped.Value() != 0 {
		t.Fatalf("counters: acc=%d del=%d drop=%d", p.Accepted.Value(), p.Delivered.Value(), p.Dropped.Value())
	}
}

func TestRoundRobinSpreadsLoad(t *testing.T) {
	net, addrs, _, per := fakeTSDs(t, 4, nil)
	p, err := New(net, addrs, Config{MaxInFlight: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		if err := p.Submit(somePoints(10)); err != nil {
			t.Fatal(err)
		}
	}
	p.Close()
	for addr, cnt := range per {
		if cnt.Load() == 0 {
			t.Fatalf("backend %s got no traffic", addr)
		}
	}
}

func TestRetryFailsOverToHealthyBackend(t *testing.T) {
	var net *rpc.Network
	fail := func(addr string) error {
		if addr == "tsd/fake-a" {
			return errors.New("backend down")
		}
		return nil
	}
	net, addrs, total, per := fakeTSDs(t, 2, fail)
	_ = net
	p, err := New(net, addrs, Config{MaxInFlight: 1, MaxRetries: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if err := p.Submit(somePoints(5)); err != nil {
			t.Fatal(err)
		}
	}
	p.Close()
	if total.Load() != 40 {
		t.Fatalf("delivered %d, want 40 (retries must fail over)", total.Load())
	}
	if per["tsd/fake-a"].Load() != 0 {
		t.Fatal("failing backend must not have accepted points")
	}
	if p.Retries.Value() == 0 {
		t.Fatal("retries not counted")
	}
}

func TestDropsAfterRetryBudget(t *testing.T) {
	net, addrs, _, _ := fakeTSDs(t, 2, func(string) error { return errors.New("all down") })
	p, err := New(net, addrs, Config{MaxInFlight: 1, MaxRetries: 2, RetryBackoff: time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Submit(somePoints(7)); err != nil {
		t.Fatal(err)
	}
	p.Close()
	if p.Dropped.Value() != 7 {
		t.Fatalf("Dropped = %d, want 7", p.Dropped.Value())
	}
	if p.Delivered.Value() != 0 {
		t.Fatal("nothing should be delivered")
	}
}

func TestSubmitAfterCloseFails(t *testing.T) {
	net, addrs, _, _ := fakeTSDs(t, 1, nil)
	p, err := New(net, addrs, Config{})
	if err != nil {
		t.Fatal(err)
	}
	p.Close()
	p.Close() // idempotent
	if err := p.Submit(somePoints(1)); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}

func TestEmptySubmitIsNoop(t *testing.T) {
	net, addrs, _, _ := fakeTSDs(t, 1, nil)
	p, err := New(net, addrs, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if err := p.Submit(nil); err != nil {
		t.Fatal(err)
	}
	if p.Accepted.Value() != 0 {
		t.Fatal("empty submit must not count")
	}
}

func TestNoBackends(t *testing.T) {
	net := rpc.NewNetwork(0, nil)
	defer net.Close()
	if _, err := New(net, nil, Config{}); !errors.Is(err, ErrNoBackends) {
		t.Fatalf("err = %v", err)
	}
}

func TestFlushWaitsForDelivery(t *testing.T) {
	slow := make(chan struct{})
	net := rpc.NewNetwork(0, nil)
	defer net.Close()
	var got atomic.Int64
	_, err := net.Register("tsd/slow", func(_ context.Context, method string, payload any) (any, error) {
		<-slow
		got.Add(int64(len(payload.(*tsdb.PutBatch).Points)))
		return nil, nil
	}, rpc.ServerConfig{QueueCap: 16, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(net, []string{"tsd/slow"}, Config{MaxInFlight: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Submit(somePoints(3)); err != nil {
		t.Fatal(err)
	}
	flushed := make(chan struct{})
	go func() {
		p.Flush()
		close(flushed)
	}()
	select {
	case <-flushed:
		t.Fatal("Flush returned before delivery")
	case <-time.After(20 * time.Millisecond):
	}
	close(slow)
	select {
	case <-flushed:
	case <-time.After(2 * time.Second):
		t.Fatal("Flush never returned")
	}
	if got.Load() != 3 {
		t.Fatal("batch not delivered")
	}
	p.Close()
}

func TestBufferBackpressureBlocksProducer(t *testing.T) {
	block := make(chan struct{})
	net := rpc.NewNetwork(0, nil)
	defer net.Close()
	_, err := net.Register("tsd/stuck", func(context.Context, string, any) (any, error) {
		<-block
		return nil, nil
	}, rpc.ServerConfig{QueueCap: 1, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(net, []string{"tsd/stuck"}, Config{MaxInFlight: 1, BufferBatches: 1})
	if err != nil {
		t.Fatal(err)
	}
	// First batch occupies the sender; second fills the buffer; third
	// must block the producer.
	if err := p.Submit(somePoints(1)); err != nil {
		t.Fatal(err)
	}
	if err := p.Submit(somePoints(1)); err != nil {
		t.Fatal(err)
	}
	blocked := make(chan struct{})
	go func() {
		_ = p.Submit(somePoints(1))
		close(blocked)
	}()
	select {
	case <-blocked:
		t.Fatal("third submit should have blocked (no backpressure)")
	case <-time.After(30 * time.Millisecond):
	}
	close(block)
	select {
	case <-blocked:
	case <-time.After(2 * time.Second):
		t.Fatal("producer never unblocked")
	}
	p.Close()
	if got := p.Backends(); len(got) != 1 || got[0] != "tsd/stuck" {
		t.Fatalf("Backends = %v", got)
	}
}

// TestSubmitContextDeadlineOnFullBuffer: a producer blocked on a full
// buffer is released by its deadline instead of hanging.
func TestSubmitContextDeadlineOnFullBuffer(t *testing.T) {
	net := rpc.NewNetwork(0, nil)
	t.Cleanup(net.Close)
	gate := make(chan struct{})
	_, err := net.Register("tsd/gated", func(context.Context, string, any) (any, error) {
		<-gate
		return nil, nil
	}, rpc.ServerConfig{QueueCap: 1, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(net, []string{"tsd/gated"}, Config{MaxInFlight: 1, BufferBatches: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { close(gate); p.Close() }()
	// First submit ends up with the (wedged) sender; the second then
	// fills the 1-slot buffer for good — the sender can never free it.
	if err := p.Submit(somePoints(5)); err != nil {
		t.Fatal(err)
	}
	if err := p.Submit(somePoints(5)); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := p.SubmitContext(ctx, somePoints(5)); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
}

// TestCloseWakesBlockedProducer: Close must release producers stuck on
// a full buffer with ErrClosed — the shutdown race the old proxy had.
func TestCloseWakesBlockedProducer(t *testing.T) {
	net := rpc.NewNetwork(0, nil)
	t.Cleanup(net.Close)
	gate := make(chan struct{})
	_, err := net.Register("tsd/gated", func(context.Context, string, any) (any, error) {
		<-gate
		return nil, nil
	}, rpc.ServerConfig{QueueCap: 1, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(net, []string{"tsd/gated"}, Config{MaxInFlight: 1, BufferBatches: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Submit(somePoints(5)); err != nil {
		t.Fatal(err)
	}
	blocked := make(chan error, 8)
	for i := 0; i < 4; i++ {
		go func() { blocked <- p.Submit(somePoints(5)) }()
	}
	time.Sleep(10 * time.Millisecond) // let them pile onto the buffer
	go func() {
		time.Sleep(10 * time.Millisecond)
		close(gate) // unstick the TSD so Close can flush
	}()
	p.Close()
	// All producers resolved: either delivered before the close landed
	// or cleanly rejected — never deadlocked, never panicked.
	for i := 0; i < 4; i++ {
		select {
		case err := <-blocked:
			if err != nil && !errors.Is(err, ErrClosed) {
				t.Fatalf("unexpected submit error: %v", err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("producer still blocked after Close")
		}
	}
	if err := p.Submit(somePoints(1)); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-close submit: %v", err)
	}
}

// TestDrainWaitsForDeliveries: Drain returns once the buffer empties,
// and honours its context while deliveries are stuck.
func TestDrainWaitsForDeliveries(t *testing.T) {
	net, addrs, total, _ := fakeTSDs(t, 1, nil)
	p, err := New(net, addrs, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	for i := 0; i < 8; i++ {
		if err := p.Submit(somePoints(10)); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if total.Load() != 80 {
		t.Fatalf("delivered %d, want 80", total.Load())
	}
}

// TestDeliveryTimeoutPropagates: a DeliveryTimeout shorter than the
// TSD's service time abandons the attempt and eventually drops.
func TestDeliveryTimeoutPropagates(t *testing.T) {
	net := rpc.NewNetwork(0, nil)
	t.Cleanup(net.Close)
	gate := make(chan struct{})
	defer close(gate)
	_, err := net.Register("tsd/stuck2", func(context.Context, string, any) (any, error) {
		<-gate
		return nil, nil
	}, rpc.ServerConfig{QueueCap: 64, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(net, []string{"tsd/stuck2"}, Config{
		MaxInFlight: 1, MaxRetries: 1, DeliveryTimeout: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Submit(somePoints(3)); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(5 * time.Second)
	for p.Dropped.Value() == 0 {
		select {
		case <-deadline:
			t.Fatal("delivery timeout never dropped the batch")
		default:
			time.Sleep(time.Millisecond)
		}
	}
}
