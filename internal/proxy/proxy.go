// Package proxy implements the buffering reverse proxy from §III-B:
// "we built a reverse proxy to buffer requests to OpenTSDB in order to
// limit the number of concurrent requests … This proxy also serves to
// increase ingestion throughput by load-balancing traffic to multiple
// ingestion processes … via a round-robin fashion."
//
// Mechanically it is a bounded queue in front of the TSD tier:
//
//   - Submit enqueues a batch, blocking the producer when the buffer
//     is full — backpressure propagates to the data source instead of
//     overflowing RegionServer RPC queues; SubmitContext bounds the
//     wait with the caller's deadline;
//   - a fixed pool of senders drains the queue, capping the number of
//     concurrent requests hitting the TSDs; each delivery attempt can
//     carry a deadline that the RPC fabric propagates through the TSD
//     into its HBase client;
//   - batches rotate across TSD daemons round-robin, and transient
//     failures (queue overflow, server down during failover) are
//     retried on the next daemon with backoff.
//
// Shutdown follows the fabric's drain protocol: Close first turns new
// submitters away, then unblocks any producer waiting on a full
// buffer, and only once no submitter can be mid-send do the senders
// flush the remaining batches and exit — the buffer channel is never
// closed under a sender.
package proxy

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/faultinject"
	"repro/internal/resilience"
	"repro/internal/rpc"
	"repro/internal/telemetry"
	"repro/internal/tsdb"
)

// ErrClosed is returned by Submit after Close.
var ErrClosed = errors.New("proxy: closed")

// ErrNoBackends means the proxy was built with no TSD addresses.
var ErrNoBackends = errors.New("proxy: no backends")

// errAllBreakersOpen is the internal delivery outcome when every
// backend's circuit is open: hold off and re-probe instead of burning
// calls into known-dead daemons.
var errAllBreakersOpen = errors.New("proxy: all backend breakers open")

// Config tunes the proxy.
type Config struct {
	// MaxInFlight caps concurrent requests to the TSD tier (default 8).
	MaxInFlight int
	// BufferBatches is the queue capacity in batches (default 1024).
	// Submit blocks while the buffer is full.
	BufferBatches int
	// MaxRetries bounds delivery attempts per batch (default 8).
	// Negative retries without bound until the proxy stops — the
	// zero-loss setting when producers can tolerate the backpressure.
	MaxRetries int
	// RetryBackoff seeds the retry backoff (default 2ms). Delays grow
	// exponentially with full jitter (resilience.Backoff), capped at
	// 250ms, so a fleet of senders retrying a recovering TSD
	// desynchronizes instead of thundering in lockstep.
	RetryBackoff time.Duration
	// Breakers, when set, adds per-backend circuit breakers: delivery
	// skips backends whose circuit is open, and when every circuit is
	// open the sender backs off instead of attempting at all.
	Breakers *resilience.Group
	// DeliveryTimeout, when > 0, bounds each delivery attempt with a
	// deadline propagated through the TSD into the region servers.
	// Note this makes delivery at-least-once: an attempt abandoned at
	// the deadline may still complete server-side while the batch is
	// retried elsewhere, so delivered/written counters can exceed the
	// submitted count under timeouts. Point writes themselves are
	// idempotent (same cell, same value).
	DeliveryTimeout time.Duration
}

func (c Config) withDefaults() Config {
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 8
	}
	if c.BufferBatches <= 0 {
		c.BufferBatches = 1024
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = 8
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 2 * time.Millisecond
	}
	return c
}

// Proxy is the ingestion frontend.
type Proxy struct {
	net   *rpc.Network
	tsds  []string
	cfg   Config
	queue chan []tsdb.Point
	rr    atomic.Uint64
	// faults, when set, injects on submission ("proxy/submit").
	faults atomic.Pointer[faultinject.Injector]

	// mu guards closed against Submit's entry; submitters tracks
	// producers between that check and their queue send so Close can
	// wait out anyone blocked on a full buffer before stopping the
	// senders.
	mu         sync.RWMutex
	closed     bool
	submitters sync.WaitGroup
	done       chan struct{} // closed first: unblocks waiting submitters
	stop       chan struct{} // closed second: senders flush and exit
	workers    sync.WaitGroup
	pending    sync.WaitGroup
	closeOnce  sync.Once

	// drainMu/drainIdle share one idle-waiter across retried Drain
	// calls (see rpc.Server.Drain for the rationale).
	drainMu   sync.Mutex
	drainIdle chan struct{}

	// Accepted counts points admitted by Submit.
	Accepted telemetry.Counter
	// Delivered counts points acknowledged by a TSD.
	Delivered telemetry.Counter
	// Dropped counts points abandoned after MaxRetries.
	Dropped telemetry.Counter
	// Retries counts re-sent batches.
	Retries telemetry.Counter
	// QueueDepth tracks buffered batches.
	QueueDepth telemetry.Gauge
}

// New starts a proxy over the given TSD addresses.
func New(net *rpc.Network, tsdAddrs []string, cfg Config) (*Proxy, error) {
	if len(tsdAddrs) == 0 {
		return nil, ErrNoBackends
	}
	cfg = cfg.withDefaults()
	p := &Proxy{
		net:   net,
		tsds:  append([]string(nil), tsdAddrs...),
		cfg:   cfg,
		queue: make(chan []tsdb.Point, cfg.BufferBatches),
		done:  make(chan struct{}),
		stop:  make(chan struct{}),
	}
	p.workers.Add(cfg.MaxInFlight)
	for i := 0; i < cfg.MaxInFlight; i++ {
		go p.sender()
	}
	return p, nil
}

// Submit enqueues one batch with no deadline (see SubmitContext).
func (p *Proxy) Submit(points []tsdb.Point) error {
	return p.SubmitContext(context.Background(), points)
}

// SubmitContext enqueues one batch for delivery, blocking while the
// buffer is full (the backpressure contract) until ctx is done or the
// proxy closes. The batch is copied; callers may reuse the slice.
func (p *Proxy) SubmitContext(ctx context.Context, points []tsdb.Point) error {
	if len(points) == 0 {
		return nil
	}
	if f := p.faults.Load(); f.Active() > 0 {
		if err := f.Do(ctx, "proxy/submit"); err != nil {
			return err
		}
	}
	p.mu.RLock()
	if p.closed {
		p.mu.RUnlock()
		return ErrClosed
	}
	p.submitters.Add(1)
	p.mu.RUnlock()
	defer p.submitters.Done()

	batch := make([]tsdb.Point, len(points))
	copy(batch, points)
	p.pending.Add(1)
	p.QueueDepth.Inc()
	select {
	case p.queue <- batch:
		p.Accepted.Add(int64(len(points)))
		return nil
	case <-ctx.Done():
		p.QueueDepth.Dec()
		p.pending.Done()
		return ctx.Err()
	case <-p.done:
		p.QueueDepth.Dec()
		p.pending.Done()
		return ErrClosed
	}
}

// sender drains the queue, delivering with round-robin + retry. After
// stop it flushes whatever remains, then exits.
func (p *Proxy) sender() {
	defer p.workers.Done()
	for {
		select {
		case batch := <-p.queue:
			p.QueueDepth.Dec()
			p.deliver(batch)
			p.pending.Done()
		case <-p.stop:
			for {
				select {
				case batch := <-p.queue:
					p.QueueDepth.Dec()
					p.deliver(batch)
					p.pending.Done()
				default:
					return
				}
			}
		}
	}
}

// SetFaults installs (or, with nil, removes) a fault injector consulted
// on every submission, with operation "proxy/submit".
func (p *Proxy) SetFaults(f *faultinject.Injector) { p.faults.Store(f) }

// pickBackend rotates to the next backend, skipping open circuits when
// breakers are configured. The empty address means every circuit is
// open right now.
func (p *Proxy) pickBackend() (string, *resilience.Breaker) {
	n := uint64(len(p.tsds))
	i := p.rr.Add(1)
	if p.cfg.Breakers == nil {
		return p.tsds[i%n], nil
	}
	for k := uint64(0); k < n; k++ {
		addr := p.tsds[(i+k)%n]
		if br := p.cfg.Breakers.For(addr); br.Allow() {
			return addr, br
		}
	}
	return "", nil
}

// canRetry reports whether another delivery attempt is allowed after
// the given attempt index. Unbounded mode (MaxRetries < 0) stops
// retrying once the proxy is shutting down so Close cannot hang on
// dead backends.
func (p *Proxy) canRetry(attempt int) bool {
	if p.cfg.MaxRetries >= 0 {
		return attempt < p.cfg.MaxRetries
	}
	select {
	case <-p.stop:
		return false
	default:
		return true
	}
}

// backoffWait sleeps d, cut short by proxy shutdown.
func (p *Proxy) backoffWait(d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-p.stop:
	}
}

// deliver attempts the batch against rotating TSDs, recording outcomes
// on the per-backend breakers when configured.
func (p *Proxy) deliver(batch []tsdb.Point) {
	boff := resilience.Backoff{Base: p.cfg.RetryBackoff, Factor: 2, Max: 250 * time.Millisecond, Jitter: true}
	for attempt := 0; ; attempt++ {
		addr, br := p.pickBackend()
		err := errAllBreakersOpen
		if addr != "" {
			ctx := context.Background()
			cancel := context.CancelFunc(func() {})
			if p.cfg.DeliveryTimeout > 0 {
				ctx, cancel = context.WithTimeout(ctx, p.cfg.DeliveryTimeout)
			}
			_, err = p.net.Call(ctx, addr, "put", &tsdb.PutBatch{Points: batch})
			cancel()
			if err == nil {
				if br != nil {
					br.Success()
				}
				p.Delivered.Add(int64(len(batch)))
				return
			}
			if br != nil {
				br.Failure()
			}
		}
		if !p.canRetry(attempt) {
			break
		}
		p.Retries.Inc()
		// Back off on pressure signals, open circuits, and after every
		// full fruitless rotation; a single dead TSD rotates
		// immediately.
		if errors.Is(err, rpc.ErrQueueOverflow) || errors.Is(err, errAllBreakersOpen) ||
			(attempt+1)%len(p.tsds) == 0 {
			p.backoffWait(boff.Delay(attempt))
		}
	}
	p.Dropped.Add(int64(len(batch)))
}

// Flush blocks until every submitted batch is delivered or dropped.
// Like Drain, it assumes producers have quiesced.
func (p *Proxy) Flush() {
	p.pending.Wait()
}

// Drain blocks until the buffer empties and in-flight deliveries
// finish, or ctx is done. The proxy stays open; pair with Close for
// full shutdown.
func (p *Proxy) Drain(ctx context.Context) error {
	p.drainMu.Lock()
	idle := p.drainIdle
	if idle == nil {
		idle = make(chan struct{})
		p.drainIdle = idle
		go func() {
			p.pending.Wait()
			p.drainMu.Lock()
			p.drainIdle = nil
			p.drainMu.Unlock()
			close(idle)
		}()
	}
	p.drainMu.Unlock()
	select {
	case <-idle:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Close flushes and stops the senders. Submit fails afterwards, and
// producers blocked on a full buffer are woken with ErrClosed.
func (p *Proxy) Close() {
	p.closeOnce.Do(func() {
		p.mu.Lock()
		p.closed = true
		p.mu.Unlock()
		// Wake producers stuck on a full buffer, then wait until no
		// submitter can be mid-send before stopping the senders.
		close(p.done)
		p.submitters.Wait()
		close(p.stop)
		p.workers.Wait()
	})
}

// Backends returns the TSD addresses (for diagnostics).
func (p *Proxy) Backends() []string {
	return append([]string(nil), p.tsds...)
}
