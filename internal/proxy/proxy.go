// Package proxy implements the buffering reverse proxy from §III-B:
// "we built a reverse proxy to buffer requests to OpenTSDB in order to
// limit the number of concurrent requests … This proxy also serves to
// increase ingestion throughput by load-balancing traffic to multiple
// ingestion processes … via a round-robin fashion."
//
// Mechanically it is a bounded queue in front of the TSD tier:
//
//   - Submit enqueues a batch, blocking the producer when the buffer
//     is full — backpressure propagates to the data source instead of
//     overflowing RegionServer RPC queues;
//   - a fixed pool of senders drains the queue, capping the number of
//     concurrent requests hitting the TSDs;
//   - batches rotate across TSD daemons round-robin, and transient
//     failures (queue overflow, server down during failover) are
//     retried on the next daemon with backoff.
package proxy

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/rpc"
	"repro/internal/telemetry"
	"repro/internal/tsdb"
)

// ErrClosed is returned by Submit after Close.
var ErrClosed = errors.New("proxy: closed")

// ErrNoBackends means the proxy was built with no TSD addresses.
var ErrNoBackends = errors.New("proxy: no backends")

// Config tunes the proxy.
type Config struct {
	// MaxInFlight caps concurrent requests to the TSD tier (default 8).
	MaxInFlight int
	// BufferBatches is the queue capacity in batches (default 1024).
	// Submit blocks while the buffer is full.
	BufferBatches int
	// MaxRetries bounds delivery attempts per batch (default 8).
	MaxRetries int
	// RetryBackoff is the pause between attempts (default 2ms, doubled
	// per retry).
	RetryBackoff time.Duration
}

func (c Config) withDefaults() Config {
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 8
	}
	if c.BufferBatches <= 0 {
		c.BufferBatches = 1024
	}
	if c.MaxRetries <= 0 {
		c.MaxRetries = 8
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 2 * time.Millisecond
	}
	return c
}

// Proxy is the ingestion frontend.
type Proxy struct {
	net   *rpc.Network
	tsds  []string
	cfg   Config
	queue chan []tsdb.Point
	rr    atomic.Uint64

	closed  atomic.Bool
	workers sync.WaitGroup
	pending sync.WaitGroup

	// Accepted counts points admitted by Submit.
	Accepted telemetry.Counter
	// Delivered counts points acknowledged by a TSD.
	Delivered telemetry.Counter
	// Dropped counts points abandoned after MaxRetries.
	Dropped telemetry.Counter
	// Retries counts re-sent batches.
	Retries telemetry.Counter
	// QueueDepth tracks buffered batches.
	QueueDepth telemetry.Gauge
}

// New starts a proxy over the given TSD addresses.
func New(net *rpc.Network, tsdAddrs []string, cfg Config) (*Proxy, error) {
	if len(tsdAddrs) == 0 {
		return nil, ErrNoBackends
	}
	cfg = cfg.withDefaults()
	p := &Proxy{
		net:   net,
		tsds:  append([]string(nil), tsdAddrs...),
		cfg:   cfg,
		queue: make(chan []tsdb.Point, cfg.BufferBatches),
	}
	p.workers.Add(cfg.MaxInFlight)
	for i := 0; i < cfg.MaxInFlight; i++ {
		go p.sender()
	}
	return p, nil
}

// Submit enqueues one batch for delivery, blocking while the buffer is
// full (the backpressure contract). The batch is copied; callers may
// reuse the slice.
func (p *Proxy) Submit(points []tsdb.Point) error {
	if p.closed.Load() {
		return ErrClosed
	}
	if len(points) == 0 {
		return nil
	}
	batch := make([]tsdb.Point, len(points))
	copy(batch, points)
	p.pending.Add(1)
	p.QueueDepth.Inc()
	select {
	case p.queue <- batch:
	default:
		// Buffer full: block (backpressure) unless closed mid-wait.
		p.queue <- batch
	}
	p.Accepted.Add(int64(len(points)))
	return nil
}

// sender drains the queue, delivering with round-robin + retry.
func (p *Proxy) sender() {
	defer p.workers.Done()
	for batch := range p.queue {
		p.QueueDepth.Dec()
		p.deliver(batch)
		p.pending.Done()
	}
}

// deliver attempts the batch against rotating TSDs.
func (p *Proxy) deliver(batch []tsdb.Point) {
	backoff := p.cfg.RetryBackoff
	for attempt := 0; attempt <= p.cfg.MaxRetries; attempt++ {
		addr := p.tsds[p.rr.Add(1)%uint64(len(p.tsds))]
		_, err := p.net.Call(addr, "put", &tsdb.PutBatch{Points: batch})
		if err == nil {
			p.Delivered.Add(int64(len(batch)))
			return
		}
		if attempt == p.cfg.MaxRetries {
			break
		}
		p.Retries.Inc()
		// Back off only on pressure signals; a dead TSD rotates
		// immediately.
		if errors.Is(err, rpc.ErrQueueOverflow) {
			time.Sleep(backoff)
			backoff *= 2
		}
	}
	p.Dropped.Add(int64(len(batch)))
}

// Flush blocks until every submitted batch is delivered or dropped.
func (p *Proxy) Flush() {
	p.pending.Wait()
}

// Close flushes and stops the senders. Submit fails afterwards.
func (p *Proxy) Close() {
	if p.closed.CompareAndSwap(false, true) {
		p.pending.Wait()
		close(p.queue)
		p.workers.Wait()
	}
}

// Backends returns the TSD addresses (for diagnostics).
func (p *Proxy) Backends() []string {
	return append([]string(nil), p.tsds...)
}
