package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func approx(t *testing.T, got, want, tol float64, msg string) {
	t.Helper()
	if math.IsNaN(got) || math.Abs(got-want) > tol {
		t.Fatalf("%s: got %v, want %v (tol %v)", msg, got, want, tol)
	}
}

func TestNormalCDFKnownValues(t *testing.T) {
	approx(t, NormalCDF(0), 0.5, 1e-15, "Φ(0)")
	approx(t, NormalCDF(1.959963984540054), 0.975, 1e-12, "Φ(1.96)")
	approx(t, NormalCDF(-1.959963984540054), 0.025, 1e-12, "Φ(-1.96)")
	approx(t, NormalCDF(3), 0.9986501019683699, 1e-12, "Φ(3)")
	approx(t, NormalSF(3), 1-0.9986501019683699, 1e-12, "SF(3)")
}

func TestNormalPDF(t *testing.T) {
	approx(t, NormalPDF(0), 1/math.Sqrt(2*math.Pi), 1e-15, "φ(0)")
	approx(t, NormalPDF(1), math.Exp(-0.5)/math.Sqrt(2*math.Pi), 1e-15, "φ(1)")
}

func TestNormalQuantileKnownValues(t *testing.T) {
	approx(t, NormalQuantile(0.5), 0, 1e-12, "Q(0.5)")
	approx(t, NormalQuantile(0.975), 1.959963984540054, 1e-9, "Q(0.975)")
	approx(t, NormalQuantile(0.025), -1.959963984540054, 1e-9, "Q(0.025)")
	approx(t, NormalQuantile(0.999), 3.090232306167813, 1e-9, "Q(0.999)")
	if !math.IsInf(NormalQuantile(0), -1) || !math.IsInf(NormalQuantile(1), 1) {
		t.Fatal("Q(0) and Q(1) must be ∓∞")
	}
	if !math.IsNaN(NormalQuantile(-0.1)) || !math.IsNaN(NormalQuantile(1.1)) {
		t.Fatal("out-of-domain p must give NaN")
	}
}

func TestNormalQuantileInvertsCDF(t *testing.T) {
	f := func(raw float64) bool {
		p := math.Mod(math.Abs(raw), 1)
		if p < 1e-10 || p > 1-1e-10 {
			return true
		}
		x := NormalQuantile(p)
		return math.Abs(NormalCDF(x)-p) < 1e-10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestLnGamma(t *testing.T) {
	// Γ(n) = (n-1)!
	approx(t, LnGamma(1), 0, 1e-12, "lnΓ(1)")
	approx(t, LnGamma(2), 0, 1e-12, "lnΓ(2)")
	approx(t, LnGamma(5), math.Log(24), 1e-10, "lnΓ(5)")
	approx(t, LnGamma(0.5), math.Log(math.Sqrt(math.Pi)), 1e-10, "lnΓ(1/2)")
	approx(t, LnGamma(11), math.Log(3628800), 1e-9, "lnΓ(11)")
	if !math.IsNaN(LnGamma(0)) {
		t.Fatal("lnΓ(0) must be NaN")
	}
}

func TestChiSquaredCDFKnownValues(t *testing.T) {
	// χ²(1): CDF(x) = 2Φ(√x) - 1.
	for _, x := range []float64{0.5, 1, 2, 3.841458820694124} {
		want := 2*NormalCDF(math.Sqrt(x)) - 1
		approx(t, ChiSquaredCDF(x, 1), want, 1e-9, "χ²(1) CDF")
	}
	// χ²(2) is Exp(1/2): CDF(x) = 1 - e^{-x/2}.
	for _, x := range []float64{0.1, 1, 5, 10} {
		approx(t, ChiSquaredCDF(x, 2), 1-math.Exp(-x/2), 1e-10, "χ²(2) CDF")
	}
	// 95th percentile of χ²(10) is 18.307038.
	approx(t, ChiSquaredCDF(18.307038053275146, 10), 0.95, 1e-8, "χ²(10) 95%")
}

func TestChiSquaredQuantileInverts(t *testing.T) {
	for _, k := range []float64{1, 2, 5, 10, 100, 1000} {
		for _, p := range []float64{0.01, 0.5, 0.95, 0.999} {
			x := ChiSquaredQuantile(p, k)
			approx(t, ChiSquaredCDF(x, k), p, 1e-8, "χ² quantile inversion")
		}
	}
	if ChiSquaredQuantile(0, 5) != 0 {
		t.Fatal("Q(0) must be 0")
	}
	if !math.IsInf(ChiSquaredQuantile(1, 5), 1) {
		t.Fatal("Q(1) must be +∞")
	}
}

func TestGammaCDF(t *testing.T) {
	// Gamma(1, θ) is Exp(1/θ).
	p, err := GammaCDF(2, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, p, 1-math.Exp(-1), 1e-10, "Gamma(1,2) CDF at 2")
	if _, err := GammaCDF(1, -1, 1); err == nil {
		t.Fatal("negative shape must error")
	}
	p, err = GammaCDF(-5, 1, 1)
	if err != nil || p != 0 {
		t.Fatal("CDF at negative x must be 0")
	}
}

func TestStudentTCDFKnownValues(t *testing.T) {
	// t(ν→∞) approaches the normal; t(1) is the Cauchy: CDF(x) = 1/2 + atan(x)/π.
	for _, x := range []float64{-2, -0.5, 0, 0.5, 2} {
		want := 0.5 + math.Atan(x)/math.Pi
		approx(t, StudentTCDF(x, 1), want, 1e-8, "t(1)=Cauchy CDF")
	}
	approx(t, StudentTCDF(0, 7), 0.5, 1e-12, "t CDF at 0")
	// 97.5th percentile of t(10) is 2.228138852.
	approx(t, StudentTCDF(2.228138851986273, 10), 0.975, 1e-8, "t(10) 97.5%")
	// Large ν ≈ normal.
	approx(t, StudentTCDF(1.96, 1e6), NormalCDF(1.96), 1e-5, "t(1e6)≈Φ")
}

func TestStudentTSymmetry(t *testing.T) {
	f := func(x float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 50 {
			return true
		}
		s := StudentTCDF(x, 5) + StudentTCDF(-x, 5)
		return math.Abs(s-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestCDFMonotoneProperties(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
			return true
		}
		lo, hi := math.Min(a, b), math.Max(a, b)
		if NormalCDF(lo) > NormalCDF(hi)+1e-15 {
			return false
		}
		lo, hi = math.Abs(lo), math.Abs(hi)
		if lo > hi {
			lo, hi = hi, lo
		}
		return ChiSquaredCDF(lo, 3) <= ChiSquaredCDF(hi, 3)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestNormalSFIntoMatchesScalar(t *testing.T) {
	xs := make([]float64, 101)
	for i := range xs {
		xs[i] = -5 + float64(i)*0.1
	}
	dst := make([]float64, len(xs))
	NormalSFInto(dst, xs)
	for i, x := range xs {
		if dst[i] != NormalSF(x) {
			t.Fatalf("NormalSFInto(%v) = %v, want %v", x, dst[i], NormalSF(x))
		}
	}
	// In-place aliasing must give the same answers.
	aliased := append([]float64(nil), xs...)
	NormalSFInto(aliased, aliased)
	for i := range xs {
		if aliased[i] != dst[i] {
			t.Fatalf("aliased NormalSFInto diverged at %d", i)
		}
	}
	if allocs := testing.AllocsPerRun(50, func() { NormalSFInto(dst, xs) }); allocs != 0 {
		t.Fatalf("NormalSFInto allocated %v times per call, want 0", allocs)
	}
}
