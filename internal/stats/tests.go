package stats

import (
	"fmt"
	"math"
)

// Tail selects which alternative hypothesis a test evaluates.
type Tail int

// The three standard alternatives.
const (
	TwoSided Tail = iota // H1: μ ≠ μ0
	Greater              // H1: μ > μ0
	Less                 // H1: μ < μ0
)

// String implements fmt.Stringer for diagnostics.
func (t Tail) String() string {
	switch t {
	case TwoSided:
		return "two-sided"
	case Greater:
		return "greater"
	case Less:
		return "less"
	default:
		return fmt.Sprintf("Tail(%d)", int(t))
	}
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased sample variance of xs (0 when n < 2).
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(n-1)
}

// StdDev returns the unbiased sample standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Covariance returns the unbiased sample covariance of xs and ys, which
// must have equal length ≥ 2 (0 otherwise).
func Covariance(xs, ys []float64) float64 {
	n := len(xs)
	if n != len(ys) || n < 2 {
		return 0
	}
	mx, my := Mean(xs), Mean(ys)
	s := 0.0
	for i := range xs {
		s += (xs[i] - mx) * (ys[i] - my)
	}
	return s / float64(n-1)
}

// TestResult is the outcome of a hypothesis test: the test statistic
// and its p-value under the null.
type TestResult struct {
	Statistic float64
	PValue    float64
}

// ZTest tests H0: μ = mu0 for a sample with known population standard
// deviation sigma, returning the z statistic and p-value for the
// requested tail. It is the per-sensor test used by the online anomaly
// evaluator, where sigma comes from the trained model.
func ZTest(sampleMean, mu0, sigma float64, n int, tail Tail) TestResult {
	if sigma <= 0 || n <= 0 {
		return TestResult{Statistic: math.NaN(), PValue: math.NaN()}
	}
	z := (sampleMean - mu0) / (sigma / math.Sqrt(float64(n)))
	return TestResult{Statistic: z, PValue: pFromZ(z, tail)}
}

// ZTestPoint is ZTest with n = 1: the p-value of a single standardized
// observation. This matches the paper's setting of testing each new
// sensor reading against its trained benchmark.
func ZTestPoint(x, mu0, sigma float64, tail Tail) TestResult {
	return ZTest(x, mu0, sigma, 1, tail)
}

func pFromZ(z float64, tail Tail) float64 {
	switch tail {
	case Greater:
		return NormalSF(z)
	case Less:
		return NormalCDF(z)
	default:
		return 2 * NormalSF(math.Abs(z))
	}
}

// TTestOneSample tests H0: μ = mu0 with unknown variance, using the
// Student's t distribution with n-1 degrees of freedom.
func TTestOneSample(xs []float64, mu0 float64, tail Tail) TestResult {
	n := len(xs)
	if n < 2 {
		return TestResult{Statistic: math.NaN(), PValue: math.NaN()}
	}
	m, sd := Mean(xs), StdDev(xs)
	if sd == 0 {
		// Degenerate sample: statistic is ±∞ when the mean differs.
		if m == mu0 {
			return TestResult{Statistic: 0, PValue: 1}
		}
		return TestResult{Statistic: math.Inf(sign(m - mu0)), PValue: 0}
	}
	t := (m - mu0) / (sd / math.Sqrt(float64(n)))
	nu := float64(n - 1)
	var p float64
	switch tail {
	case Greater:
		p = StudentTSF(t, nu)
	case Less:
		p = StudentTCDF(t, nu)
	default:
		p = 2 * StudentTSF(math.Abs(t), nu)
	}
	return TestResult{Statistic: t, PValue: p}
}

func sign(x float64) int {
	if x < 0 {
		return -1
	}
	return 1
}

// ChiSquaredTest converts a chi-squared distributed statistic with k
// degrees of freedom into an upper-tail p-value. The detector's T² and
// SPE statistics take this path.
func ChiSquaredTest(statistic, k float64) TestResult {
	return TestResult{Statistic: statistic, PValue: ChiSquaredSF(statistic, k)}
}

// FWER returns the family-wise error rate 1-(1-α)^m of m independent
// tests each at level α — the closed-form blow-up from §IV of the
// paper (α=0.05, m=10 ⇒ 40%).
func FWER(alpha float64, m int) float64 {
	if m <= 0 {
		return 0
	}
	return 1 - math.Pow(1-alpha, float64(m))
}

// SidakAlpha returns the per-test level that makes the family-wise rate
// of m independent tests equal alpha: 1-(1-α)^(1/m).
func SidakAlpha(alpha float64, m int) float64 {
	if m <= 0 {
		return alpha
	}
	return 1 - math.Pow(1-alpha, 1/float64(m))
}
