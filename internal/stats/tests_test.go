package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestMeanVarianceCovariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	approx(t, Mean(xs), 5, 1e-12, "mean")
	approx(t, Variance(xs), 32.0/7.0, 1e-12, "variance")
	approx(t, StdDev(xs), math.Sqrt(32.0/7.0), 1e-12, "stddev")

	ys := []float64{1, 2, 3}
	zs := []float64{2, 4, 6}
	approx(t, Covariance(ys, zs), 2, 1e-12, "cov(y, 2y)")
	approx(t, Covariance(ys, ys), Variance(ys), 1e-12, "cov(y,y)=var(y)")
}

func TestMomentsDegenerate(t *testing.T) {
	if Mean(nil) != 0 || Variance(nil) != 0 || Variance([]float64{1}) != 0 {
		t.Fatal("degenerate inputs must return 0")
	}
	if Covariance([]float64{1, 2}, []float64{1}) != 0 {
		t.Fatal("length mismatch must return 0")
	}
}

func TestZTestTwoSided(t *testing.T) {
	// Observation exactly at the 97.5th percentile: two-sided p = 0.05.
	r := ZTestPoint(1.959963984540054, 0, 1, TwoSided)
	approx(t, r.PValue, 0.05, 1e-9, "two-sided p at z=1.96")
	approx(t, r.Statistic, 1.959963984540054, 1e-12, "z statistic")
}

func TestZTestTails(t *testing.T) {
	g := ZTestPoint(2, 0, 1, Greater)
	l := ZTestPoint(2, 0, 1, Less)
	two := ZTestPoint(2, 0, 1, TwoSided)
	approx(t, g.PValue, NormalSF(2), 1e-15, "greater tail")
	approx(t, l.PValue, NormalCDF(2), 1e-15, "less tail")
	approx(t, two.PValue, 2*NormalSF(2), 1e-15, "two-sided")
	// Sample size sharpens the statistic by √n.
	r := ZTest(0.5, 0, 1, 16, Greater)
	approx(t, r.Statistic, 2, 1e-12, "z with n=16")
}

func TestZTestBadParams(t *testing.T) {
	if r := ZTest(0, 0, 0, 10, TwoSided); !math.IsNaN(r.PValue) {
		t.Fatal("sigma=0 must produce NaN")
	}
	if r := ZTest(0, 0, 1, 0, TwoSided); !math.IsNaN(r.PValue) {
		t.Fatal("n=0 must produce NaN")
	}
}

func TestZTestPValueUniformUnderNull(t *testing.T) {
	// Under H0 the p-values must be ~Uniform(0,1): check mean and the
	// fraction below 0.05.
	rng := rand.New(rand.NewSource(7))
	const n = 20000
	var sum float64
	below := 0
	for i := 0; i < n; i++ {
		p := ZTestPoint(rng.NormFloat64(), 0, 1, TwoSided).PValue
		sum += p
		if p < 0.05 {
			below++
		}
	}
	if m := sum / n; math.Abs(m-0.5) > 0.01 {
		t.Fatalf("mean p under null = %v, want ≈0.5", m)
	}
	frac := float64(below) / n
	if math.Abs(frac-0.05) > 0.01 {
		t.Fatalf("P(p<0.05) under null = %v, want ≈0.05", frac)
	}
}

func TestTTestOneSample(t *testing.T) {
	xs := []float64{5.1, 4.9, 5.0, 5.2, 4.8, 5.05}
	r := TTestOneSample(xs, 5.0, TwoSided)
	if r.PValue < 0.5 {
		t.Fatalf("p = %v: sample centered on μ0 must not reject", r.PValue)
	}
	r = TTestOneSample(xs, 3.0, TwoSided)
	if r.PValue > 1e-4 {
		t.Fatalf("p = %v: sample far from μ0 must reject strongly", r.PValue)
	}
	gr := TTestOneSample(xs, 3.0, Greater)
	if gr.PValue > r.PValue {
		t.Fatal("one-sided p in the correct direction must be ≤ two-sided")
	}
}

func TestTTestDegenerate(t *testing.T) {
	if r := TTestOneSample([]float64{1}, 0, TwoSided); !math.IsNaN(r.PValue) {
		t.Fatal("n<2 must give NaN")
	}
	r := TTestOneSample([]float64{2, 2, 2}, 2, TwoSided)
	if r.PValue != 1 {
		t.Fatal("constant sample equal to μ0 must give p=1")
	}
	r = TTestOneSample([]float64{2, 2, 2}, 1, TwoSided)
	if r.PValue != 0 {
		t.Fatal("constant sample unequal to μ0 must give p=0")
	}
}

func TestChiSquaredTest(t *testing.T) {
	r := ChiSquaredTest(18.307038053275146, 10)
	approx(t, r.PValue, 0.05, 1e-8, "χ²(10) upper 5%")
}

func TestFWERMatchesClosedForm(t *testing.T) {
	// The exact numbers quoted in §IV of the paper.
	approx(t, FWER(0.05, 1), 0.05, 1e-12, "m=1")
	approx(t, FWER(0.05, 10), 0.4012630607616213, 1e-12, "m=10 ⇒ ≈40%")
	if f := FWER(0.05, 1000); f < 0.999999 {
		t.Fatalf("m=1000 FWER = %v, want ≈1", f)
	}
	if FWER(0.05, 0) != 0 {
		t.Fatal("m=0 must give 0")
	}
}

func TestSidakAlpha(t *testing.T) {
	// The Šidák-corrected level must restore FWER = α exactly.
	for _, m := range []int{1, 10, 100, 1000} {
		a := SidakAlpha(0.05, m)
		approx(t, FWER(a, m), 0.05, 1e-10, "Šidák round trip")
	}
	if SidakAlpha(0.05, 0) != 0.05 {
		t.Fatal("m=0 must return alpha unchanged")
	}
}

func TestTailString(t *testing.T) {
	if TwoSided.String() != "two-sided" || Greater.String() != "greater" || Less.String() != "less" {
		t.Fatal("Tail.String mismatch")
	}
	if Tail(99).String() == "" {
		t.Fatal("unknown tail must still render")
	}
}
