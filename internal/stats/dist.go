// Package stats implements the probability distributions and hypothesis
// tests needed by the anomaly detector: the standard normal, Student's t,
// chi-squared and gamma distributions, one- and two-sided z/t tests, and
// small helpers (mean, variance, covariance) shared across the repo.
//
// Everything is implemented from scratch on math primitives; accuracy
// targets are ~1e-10 for the normal CDF/quantile and ~1e-8 for the
// incomplete gamma family, which is far tighter than the experiment
// harnesses require.
package stats

import (
	"errors"
	"math"
)

// ErrBadParam reports an out-of-domain distribution parameter.
var ErrBadParam = errors.New("stats: parameter out of domain")

// NormalCDF returns P(Z ≤ x) for the standard normal distribution.
func NormalCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}

// NormalSF returns the survival function P(Z > x) = 1 - NormalCDF(x),
// computed directly from Erfc to stay accurate deep in the tail.
func NormalSF(x float64) float64 {
	return 0.5 * math.Erfc(x/math.Sqrt2)
}

// NormalSFInto fills dst[i] = NormalSF(xs[i]) in one vectorized pass,
// the evaluator's per-tick p-value kernel: no per-element call overhead
// and no allocation. dst may alias xs; both must share the same
// length. Empty input is a no-op.
func NormalSFInto(dst, xs []float64) {
	if len(xs) == 0 {
		return
	}
	_ = dst[len(xs)-1]
	for i, x := range xs {
		dst[i] = 0.5 * math.Erfc(x/math.Sqrt2)
	}
}

// NormalPDF returns the standard normal density at x.
func NormalPDF(x float64) float64 {
	return math.Exp(-0.5*x*x) / math.Sqrt(2*math.Pi)
}

// NormalQuantile returns the x with NormalCDF(x) = p, the inverse CDF of
// the standard normal. It uses the Acklam rational approximation refined
// by one Halley step, giving ~1e-15 relative accuracy over (0,1).
func NormalQuantile(p float64) float64 {
	if math.IsNaN(p) || p <= 0 || p >= 1 {
		switch {
		case p == 0:
			return math.Inf(-1)
		case p == 1:
			return math.Inf(1)
		default:
			return math.NaN()
		}
	}
	// Coefficients of Acklam's approximation.
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02, 1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02, 6.680131188771972e+01, -1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00, -2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00, 3.754408661907416e+00}
	const plow, phigh = 0.02425, 1 - 0.02425
	var x float64
	switch {
	case p < plow:
		q := math.Sqrt(-2 * math.Log(p))
		x = (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= phigh:
		q := p - 0.5
		r := q * q
		x = (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		x = -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
	// One Halley refinement step.
	e := NormalCDF(x) - p
	u := e * math.Sqrt(2*math.Pi) * math.Exp(x*x/2)
	x = x - u/(1+x*u/2)
	return x
}

// lnGamma returns ln Γ(x) for x > 0 (Lanczos approximation, g=7, n=9).
func lnGamma(x float64) float64 {
	if x <= 0 {
		return math.NaN()
	}
	g := [9]float64{
		0.99999999999980993, 676.5203681218851, -1259.1392167224028,
		771.32342877765313, -176.61502916214059, 12.507343278686905,
		-0.13857109526572012, 9.9843695780195716e-6, 1.5056327351493116e-7,
	}
	if x < 0.5 {
		// Reflection formula.
		return math.Log(math.Pi/math.Sin(math.Pi*x)) - lnGamma(1-x)
	}
	x--
	a := g[0]
	t := x + 7.5
	for i := 1; i < 9; i++ {
		a += g[i] / (x + float64(i))
	}
	return 0.5*math.Log(2*math.Pi) + (x+0.5)*math.Log(t) - t + math.Log(a)
}

// LnGamma exposes the log-gamma function; Γ(n) = (n-1)! for integer n.
func LnGamma(x float64) float64 { return lnGamma(x) }

// regIncGammaLower returns the regularized lower incomplete gamma
// P(a, x) = γ(a,x)/Γ(a), by series for x < a+1 and continued fraction
// otherwise (Numerical-Recipes style, but re-derived from the standard
// Lentz algorithm).
func regIncGammaLower(a, x float64) float64 {
	if x < 0 || a <= 0 {
		return math.NaN()
	}
	if x == 0 {
		return 0
	}
	if x < a+1 {
		// Series representation.
		ap := a
		sum := 1.0 / a
		del := sum
		for n := 0; n < 500; n++ {
			ap++
			del *= x / ap
			sum += del
			if math.Abs(del) < math.Abs(sum)*1e-15 {
				break
			}
		}
		return sum * math.Exp(-x+a*math.Log(x)-lnGamma(a))
	}
	// Continued fraction for Q(a,x), then P = 1-Q.
	const tiny = 1e-300
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i < 500; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < 1e-15 {
			break
		}
	}
	q := math.Exp(-x+a*math.Log(x)-lnGamma(a)) * h
	return 1 - q
}

// GammaCDF returns P(X ≤ x) for X ~ Gamma(shape k, scale θ).
func GammaCDF(x, shape, scale float64) (float64, error) {
	if shape <= 0 || scale <= 0 {
		return 0, ErrBadParam
	}
	if x <= 0 {
		return 0, nil
	}
	return regIncGammaLower(shape, x/scale), nil
}

// ChiSquaredCDF returns P(X ≤ x) for X ~ χ²(k). The online detector
// uses it to convert Hotelling T² / SPE statistics into p-values.
func ChiSquaredCDF(x float64, k float64) float64 {
	if k <= 0 || x <= 0 {
		return 0
	}
	return regIncGammaLower(k/2, x/2)
}

// ChiSquaredSF returns the chi-squared survival function P(X > x).
func ChiSquaredSF(x float64, k float64) float64 {
	return 1 - ChiSquaredCDF(x, k)
}

// ChiSquaredQuantile returns the x with ChiSquaredCDF(x) = p, found by
// bisection on the monotone CDF (the detector only calls this once per
// model fit, so speed is irrelevant next to robustness).
func ChiSquaredQuantile(p float64, k float64) float64 {
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		return math.Inf(1)
	}
	lo, hi := 0.0, k+10
	for ChiSquaredCDF(hi, k) < p {
		hi *= 2
		if hi > 1e12 {
			break
		}
	}
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if ChiSquaredCDF(mid, k) < p {
			lo = mid
		} else {
			hi = mid
		}
		if hi-lo < 1e-12*(1+hi) {
			break
		}
	}
	return (lo + hi) / 2
}

// regIncBeta returns the regularized incomplete beta I_x(a, b) via the
// standard continued-fraction expansion (Lentz's method).
func regIncBeta(x, a, b float64) float64 {
	if x <= 0 {
		return 0
	}
	if x >= 1 {
		return 1
	}
	lbeta := lnGamma(a) + lnGamma(b) - lnGamma(a+b)
	front := math.Exp(a*math.Log(x)+b*math.Log(1-x)-lbeta) / a
	// Use the symmetry relation for faster convergence.
	if x > (a+1)/(a+b+2) {
		return 1 - regIncBeta(1-x, b, a)
	}
	const tiny = 1e-300
	c := 1.0
	d := 1 - (a+b)*x/(a+1)
	if math.Abs(d) < tiny {
		d = tiny
	}
	d = 1 / d
	h := d
	for m := 1; m <= 300; m++ {
		fm := float64(m)
		// Even step.
		num := fm * (b - fm) * x / ((a + 2*fm - 1) * (a + 2*fm))
		d = 1 + num*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + num/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		h *= d * c
		// Odd step.
		num = -(a + fm) * (a + b + fm) * x / ((a + 2*fm) * (a + 2*fm + 1))
		d = 1 + num*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + num/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < 1e-14 {
			break
		}
	}
	return front * h
}

// StudentTCDF returns P(T ≤ t) for T ~ Student's t with ν degrees of
// freedom.
func StudentTCDF(t float64, nu float64) float64 {
	if nu <= 0 {
		return math.NaN()
	}
	x := nu / (nu + t*t)
	p := 0.5 * regIncBeta(x, nu/2, 0.5)
	if t > 0 {
		return 1 - p
	}
	return p
}

// StudentTSF returns P(T > t).
func StudentTSF(t float64, nu float64) float64 { return 1 - StudentTCDF(t, nu) }
