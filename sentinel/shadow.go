package sentinel

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/mllib"
)

// ShadowStats is one shadow family's comparison counters, aggregated
// at row granularity against the primary detector: an agreement is a
// row both flagged, a disagreement a row exactly one flagged. Rows
// neither flagged (the overwhelming majority) count as neither.
type ShadowStats struct {
	// Batches is the number of unit batches the shadow evaluated;
	// Flags the number of flags it would have raised.
	Batches int64
	Flags   int64
	// Agreements / Disagreements count evaluated rows where the
	// primary and the shadow verdicts matched / differed, over rows
	// where at least one of the two flagged.
	Agreements    int64
	Disagreements int64
	// Shed counts batches dropped because the shadow queue was full —
	// the cost of never letting a slow shadow backpressure the primary
	// path. Shed batches are not evaluated or compared.
	Shed int64
	// Errors counts batches the shadow failed on (construction or
	// evaluation error).
	Errors int64
}

// shadowJob is one unit batch copied out of a worker's scratch (the
// scratch is reused for the next record, so the shadow must own its
// rows) together with the primary's row verdicts.
type shadowJob struct {
	unit    int
	n       int
	backing []float64
	rows    [][]float64
	ts      []int64
	primary []bool // primary flagged row i
}

// shadowRunner evaluates the configured shadow families on a single
// goroutine fed by a bounded queue. The worker side only ever does a
// non-blocking send: when the runner falls behind, batches are shed
// and counted, so a pathologically slow shadow detector can never
// stall, backpressure or corrupt the primary path.
type shadowRunner struct {
	newDet  func(name string, unit int) (mllib.Detector, error)
	names   []string
	jobs    chan *shadowJob
	free    sync.Pool
	pending atomic.Int64
	done    chan struct{}

	// stats is indexed like names; counters are atomic so DetectorStatus
	// can read them while the runner writes.
	stats []shadowCounters

	// runner-goroutine-private state
	dets []map[int]mllib.Detector // per name, per unit
	det  mllib.Detections
	rf   []bool // shadow row-flag scratch
}

type shadowCounters struct {
	batches, flags, agreements, disagreements, shed, errors atomic.Int64
}

func newShadowRunner(newDet func(name string, unit int) (mllib.Detector, error), names []string, buffer int) *shadowRunner {
	r := &shadowRunner{
		newDet: newDet,
		names:  names,
		jobs:   make(chan *shadowJob, buffer),
		done:   make(chan struct{}),
		stats:  make([]shadowCounters, len(names)),
		dets:   make([]map[int]mllib.Detector, len(names)),
	}
	for i := range r.dets {
		r.dets[i] = make(map[int]mllib.Detector)
	}
	go r.run()
	return r
}

// offer hands the runner a copy of one evaluated batch. It never
// blocks: when the queue is full the batch is shed against every
// shadow family.
func (r *shadowRunner) offer(unit int, rows [][]float64, ts []int64, primary []bool) {
	job, _ := r.free.Get().(*shadowJob)
	if job == nil {
		job = &shadowJob{}
	}
	n := len(rows)
	sensors := 0
	if n > 0 {
		sensors = len(rows[0])
	}
	if cap(job.backing) < n*sensors {
		job.backing = make([]float64, n*sensors)
	}
	if cap(job.rows) < n {
		job.rows = make([][]float64, n)
	}
	if cap(job.ts) < n {
		job.ts = make([]int64, n)
	}
	if cap(job.primary) < n {
		job.primary = make([]bool, n)
	}
	job.unit, job.n = unit, n
	job.backing = job.backing[:n*sensors]
	job.rows = job.rows[:n]
	job.ts = job.ts[:n]
	job.primary = job.primary[:n]
	for i, row := range rows {
		dst := job.backing[i*sensors : (i+1)*sensors]
		copy(dst, row)
		job.rows[i] = dst
	}
	copy(job.ts, ts)
	copy(job.primary, primary)
	r.pending.Add(1)
	select {
	case r.jobs <- job:
	default:
		r.pending.Add(-1)
		r.free.Put(job)
		for i := range r.stats {
			r.stats[i].shed.Add(1)
		}
	}
}

// run is the shadow goroutine: drain jobs, evaluate every shadow
// family, count agreements. It owns r.dets, r.det and r.rf.
func (r *shadowRunner) run() {
	defer close(r.done)
	for job := range r.jobs {
		for i, name := range r.names {
			r.evalShadow(i, name, job)
		}
		r.pending.Add(-1)
		r.free.Put(job)
	}
}

func (r *shadowRunner) evalShadow(i int, name string, job *shadowJob) {
	st := &r.stats[i]
	d, ok := r.dets[i][job.unit]
	if !ok {
		var err error
		d, err = r.newDet(name, job.unit)
		if err != nil {
			st.errors.Add(1)
			return
		}
		r.dets[i][job.unit] = d
	}
	if err := d.DetectBatchInto(job.rows[:job.n], job.ts[:job.n], &r.det); err != nil {
		st.errors.Add(1)
		return
	}
	st.batches.Add(1)
	st.flags.Add(int64(len(r.det.Flags)))
	if cap(r.rf) < job.n {
		r.rf = make([]bool, job.n)
	}
	r.rf = r.rf[:job.n]
	clear(r.rf)
	for _, f := range r.det.Flags {
		r.rf[f.Row] = true
	}
	for row := 0; row < job.n; row++ {
		p, s := job.primary[row], r.rf[row]
		switch {
		case p && s:
			st.agreements.Add(1)
		case p != s:
			st.disagreements.Add(1)
		}
	}
}

// stop closes the queue and waits for in-flight jobs to finish. The
// caller must guarantee no further offer calls (the pool stops its
// workers first).
func (r *shadowRunner) stop() {
	close(r.jobs)
	<-r.done
}

// drain blocks until every offered batch has been evaluated (or ctx
// is done) — the deterministic barrier shadow tests assert through.
func (r *shadowRunner) drain(ctx context.Context) error {
	for r.pending.Load() > 0 {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(time.Millisecond):
		}
	}
	return nil
}

// snapshot copies the counters for one family.
func (r *shadowRunner) snapshot(i int) ShadowStats {
	st := &r.stats[i]
	return ShadowStats{
		Batches:       st.batches.Load(),
		Flags:         st.flags.Load(),
		Agreements:    st.agreements.Load(),
		Disagreements: st.disagreements.Load(),
		Shed:          st.shed.Load(),
		Errors:        st.errors.Load(),
	}
}
