package sentinel

import (
	"context"
	"io"
	"log"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/fdr"
	"repro/internal/query"
	"repro/internal/simdata"
	"repro/internal/telemetry"
	"repro/internal/tsdb"
)

// newSmallSystem boots a laptop-scale deployment with aggressive
// faults so the integration paths all fire.
func newSmallSystem(t *testing.T) *System {
	t.Helper()
	sys, err := New(Config{
		StorageNodes:   2,
		Units:          4,
		SensorsPerUnit: 12,
		Seed:           7,
		FaultFraction:  0.6,
		FaultOnset:     60,
		Procedure:      fdr.BH,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sys.Close)
	return sys
}

func TestConfigDefaults(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.StorageNodes != 3 || cfg.SaltBuckets != 3 || cfg.Units != 10 {
		t.Fatalf("defaults = %+v", cfg)
	}
	if cfg.Procedure != fdr.BH || cfg.Level != 0.05 {
		t.Fatal("detection defaults wrong")
	}
	if c := (Config{SaltBuckets: -1}).withDefaults(); c.SaltBuckets != 0 {
		t.Fatal("SaltBuckets=-1 must disable salting")
	}
}

func TestEndToEndIngestTrainDetectVisualize(t *testing.T) {
	sys := newSmallSystem(t)

	// Ingest 100 steps: 50 healthy (training) + post-onset faults.
	stats, err := sys.IngestRange(0, 100)
	if err != nil {
		t.Fatal(err)
	}
	wantSamples := int64(4 * 12 * 100)
	if stats.Samples != wantSamples {
		t.Fatalf("ingested %d samples, want %d", stats.Samples, wantSamples)
	}
	if got := sys.TSDB.PointsWritten(); got != wantSamples {
		t.Fatalf("TSD tier saw %d points, want %d", got, wantSamples)
	}

	// Train from the stored healthy window, concurrently (E7 mode).
	if err := sys.TrainFromTSDB(0, 50, true); err != nil {
		t.Fatal(err)
	}
	units, err := sys.Catalog.Units()
	if err != nil || len(units) != 4 {
		t.Fatalf("catalog units = %v, %v", units, err)
	}

	// Detect over the post-onset window.
	reports, err := sys.Detect(80, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 4 {
		t.Fatalf("reports for %d units", len(reports))
	}
	if sys.SamplesEvaluated() != int64(4*12*20) {
		t.Fatalf("SamplesEvaluated = %d", sys.SamplesEvaluated())
	}
	// Every faulted unit should have flags; count write-backs through
	// the viz backend below.
	faulty := 0
	flagged := 0
	for _, u := range sys.Units() {
		if sys.Fleet.UnitFault(u).Class == simdata.FaultNone {
			continue
		}
		faulty++
		for _, rep := range reports[u] {
			if rep.Anomalous() {
				flagged++
				break
			}
		}
	}
	if faulty == 0 {
		t.Fatal("test fleet has no faulty units; raise FaultFraction")
	}
	if flagged < faulty {
		t.Fatalf("only %d of %d faulty units flagged", flagged, faulty)
	}

	// The visualization must surface the flags (Figure 3 path), served
	// through the gateway like production.
	handler, tail := sys.Gateway(100, GatewayConfig{AccessLog: log.New(io.Discard, "", 0)})
	defer tail.Close()
	req := httptest.NewRequest("GET", "/?from=80&to=100", nil)
	rec := httptest.NewRecorder()
	handler.ServeHTTP(rec, req)
	if rec.Code != 200 {
		t.Fatalf("fleet page status = %d", rec.Code)
	}
	body := rec.Body.String()
	if !strings.Contains(body, "statusbar") {
		t.Fatal("fleet page missing status bar")
	}
	if !strings.Contains(body, "warning") && !strings.Contains(body, "critical") {
		t.Fatal("fleet page shows no unhealthy units despite flags")
	}
}

func TestTrainFromFleetMatchesTSDBPath(t *testing.T) {
	sys := newSmallSystem(t)
	if _, err := sys.IngestRange(0, 50); err != nil {
		t.Fatal(err)
	}
	if err := sys.TrainFromTSDB(0, 50, false); err != nil {
		t.Fatal(err)
	}
	mTSDB, err := sys.Catalog.Load(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.TrainFromFleet(0, 50, false); err != nil {
		t.Fatal(err)
	}
	mFleet, err := sys.Catalog.Load(0)
	if err != nil {
		t.Fatal(err)
	}
	// The TSDB round trip must preserve the data exactly, so the two
	// models agree to floating-point equality.
	for j := range mTSDB.Mean {
		if mTSDB.Mean[j] != mFleet.Mean[j] {
			t.Fatalf("sensor %d mean differs: %v vs %v", j, mTSDB.Mean[j], mFleet.Mean[j])
		}
	}
}

func TestDetectWithoutTrainingFails(t *testing.T) {
	sys := newSmallSystem(t)
	if _, err := sys.IngestRange(0, 10); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Detect(0, 5); err == nil {
		// ProcessFleet with an empty catalog returns no units — that is
		// acceptable; but it must not invent reports.
		reports, _ := sys.Detect(0, 5)
		if len(reports) != 0 {
			t.Fatal("reports produced without trained models")
		}
	}
}

func TestUnitsAccessor(t *testing.T) {
	sys := newSmallSystem(t)
	units := sys.Units()
	if len(units) != 4 || units[3] != 3 {
		t.Fatalf("units = %v", units)
	}
	if sys.Config().Units != 4 {
		t.Fatal("Config accessor wrong")
	}
}

func TestStorageTierThroughSystem(t *testing.T) {
	// End-to-end over the public surface: ingest two hours through the
	// bus and proxy, seal the closed hour with a manual maintenance
	// pass, and check queries and metrics see the compressed tier.
	sys, err := New(Config{
		StorageNodes:   2,
		Units:          2,
		SensorsPerUnit: 3,
		Seed:           7,
		HotBlockBytes:  -1, // spill every sealed block
		RawTTL:         0,  // keep everything
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sys.Close)

	// Two sparse "hours": a burst at the start of each, so the ingest
	// stays fast but the row bases span a seal boundary.
	if _, err := sys.IngestRange(0, 30); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.IngestRange(3600, 30); err != nil {
		t.Fatal(err)
	}
	if err := sys.CompactNow(context.Background()); err != nil {
		t.Fatal(err)
	}
	if sys.Blocks.BlocksSealed.Value() == 0 {
		t.Fatal("maintenance pass sealed nothing")
	}
	if sys.Blocks.BlocksSpilled.Value() == 0 {
		t.Fatal("negative budget must spill sealed blocks")
	}

	// The gateway's query engine reads sealed + hot tiers seamlessly.
	engine := sys.QueryEngine(query.Config{MaxEntries: -1})
	series, err := engine.QueryContext(context.Background(), tsdb.Query{
		Metric: tsdb.MetricEnergy, Tags: tsdb.EnergyTags(1, 1), Start: 0, End: 3700,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 1 || len(series[0].Samples) != 60 {
		t.Fatalf("query over sealed+hot = %d series / %d samples, want 1 / 60",
			len(series), len(series[0].Samples))
	}

	// The new counters are on the metrics surface.
	reg := telemetry.NewRegistry()
	sys.RegisterMetrics(reg)
	dump := reg.Dump()
	for _, name := range []string{"blocks_sealed", "blocks_spilled", "spill_reads", "rollup_serves", "compactor_passes"} {
		if !strings.Contains(dump, name) {
			t.Fatalf("metric %q missing from /metrics:\n%s", name, dump)
		}
	}
}
