package client

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"

	v1 "repro/internal/api/v1"
)

// Stream is a live anomaly feed from GET /api/v1/anomalies/stream.
// Read events with Next; Close (or cancelling the context passed to
// StreamAnomalies) ends it.
type Stream struct {
	body io.ReadCloser
	sc   *bufio.Scanner
}

// StreamAnomalies opens the SSE tail. The stream lives until ctx is
// cancelled, Close is called, or the server shuts the feed down.
func (c *Client) StreamAnomalies(ctx context.Context) (*Stream, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+v1.PathPrefix+"/anomalies/stream", nil)
	if err != nil {
		return nil, fmt.Errorf("client: %w", err)
	}
	req.Header.Set("Accept", v1.ContentTypeSSE)
	if c.apiKey != "" {
		req.Header.Set("X-API-Key", c.apiKey)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, decodeError(resp)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, v1.ContentTypeSSE) {
		resp.Body.Close()
		return nil, fmt.Errorf("client: not an event stream (got %q)", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 4096), 1<<20)
	return &Stream{body: resp.Body, sc: sc}, nil
}

// Next blocks for the next anomaly event, skipping heartbeats. It
// returns io.EOF once the stream ends cleanly (server shutdown) and
// the context's error when the stream's context is cancelled.
func (s *Stream) Next() (v1.AnomalyEvent, error) {
	var (
		ev    v1.AnomalyEvent
		event string
		data  strings.Builder
	)
	for s.sc.Scan() {
		line := s.sc.Text()
		switch {
		case line == "":
			// Frame boundary: dispatch when we hold a data payload.
			if event == v1.EventAnomaly && data.Len() > 0 {
				if err := json.Unmarshal([]byte(data.String()), &ev); err != nil {
					return ev, fmt.Errorf("client: bad event payload: %w", err)
				}
				return ev, nil
			}
			event = ""
			data.Reset()
		case strings.HasPrefix(line, ":"):
			// Heartbeat comment.
		case strings.HasPrefix(line, "event:"):
			event = strings.TrimSpace(strings.TrimPrefix(line, "event:"))
		case strings.HasPrefix(line, "data:"):
			data.WriteString(strings.TrimSpace(strings.TrimPrefix(line, "data:")))
		}
	}
	if err := s.sc.Err(); err != nil {
		return ev, err
	}
	return ev, io.EOF
}

// Close ends the stream.
func (s *Stream) Close() error { return s.body.Close() }
