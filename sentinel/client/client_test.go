package client

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	v1 "repro/internal/api/v1"
	"repro/internal/resilience"
)

// noSleep replaces backoff waits with a recorder.
func noSleep(waits *[]time.Duration) func(context.Context, time.Duration) error {
	return func(_ context.Context, d time.Duration) error {
		*waits = append(*waits, d)
		return nil
	}
}

func TestRetryOnBackpressure(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.Header().Set("Retry-After", "7")
			w.WriteHeader(429)
			_ = json.NewEncoder(w).Encode(v1.ErrorEnvelope{Error: &v1.Error{
				Code: v1.CodeRateLimited, Message: "slow down", Status: 429, RetryAfterSeconds: 7,
			}})
			return
		}
		_ = json.NewEncoder(w).Encode(v1.PutResponse{Accepted: 1})
	}))
	defer srv.Close()
	c, err := New(srv.URL, WithHTTPClient(srv.Client()), WithRetry(3, 10*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	var waits []time.Duration
	c.sleep = noSleep(&waits)
	n, err := c.PutPoints(context.Background(), []v1.Point{{Metric: "energy", Timestamp: 1, Value: 2}})
	if err != nil || n != 1 {
		t.Fatalf("put = %d, %v", n, err)
	}
	if calls.Load() != 3 {
		t.Fatalf("attempts = %d, want 3", calls.Load())
	}
	// The server's Retry-After (7s) outweighs the base backoff.
	for i, w := range waits {
		if w < 7*time.Second {
			t.Fatalf("wait %d = %s, want ≥ 7s (Retry-After honored)", i, w)
		}
	}
}

func TestRetriesExhaustedSurfaceTypedError(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(503)
		_ = json.NewEncoder(w).Encode(v1.ErrorEnvelope{Error: &v1.Error{
			Code: v1.CodeUnavailable, Message: "bus draining", Status: 503,
		}})
	}))
	defer srv.Close()
	c, _ := New(srv.URL, WithHTTPClient(srv.Client()), WithRetry(2, time.Millisecond))
	var waits []time.Duration
	c.sleep = noSleep(&waits)
	_, err := c.Fleet(context.Background(), FleetParams{})
	var ae *v1.Error
	if !errors.As(err, &ae) {
		t.Fatalf("err = %v, want *v1.Error", err)
	}
	if ae.Code != v1.CodeUnavailable || ae.Status != 503 {
		t.Fatalf("typed error = %+v", ae)
	}
	if len(waits) != 2 {
		t.Fatalf("retried %d times, want 2", len(waits))
	}
}

// TestOverloadShedNotRetried is the regression guard for admission
// sheds: a 503 with code "overloaded" must come back on the FIRST
// attempt as a typed *OverloadedError carrying Retry-After — folding
// it into the generic 503 retry loop would have the whole fleet
// hammering a gateway that just asked it to stop.
func TestOverloadShedNotRetried(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.Header().Set("Retry-After", "3")
		w.WriteHeader(503)
		_ = json.NewEncoder(w).Encode(v1.ErrorEnvelope{Error: &v1.Error{
			Code: v1.CodeOverloaded, Message: "shed: bulk at pressure 0.81", Status: 503, RetryAfterSeconds: 3,
		}})
	}))
	defer srv.Close()
	c, _ := New(srv.URL, WithHTTPClient(srv.Client()), WithRetry(5, time.Millisecond))
	var waits []time.Duration
	c.sleep = noSleep(&waits)
	_, err := c.PutPoints(context.Background(), []v1.Point{{Metric: "energy", Timestamp: 1, Value: 2}})
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("err = %v, want errors.Is(…, ErrOverloaded)", err)
	}
	var oe *OverloadedError
	if !errors.As(err, &oe) {
		t.Fatalf("err = %T, want *OverloadedError", err)
	}
	if oe.RetryAfter != 3*time.Second {
		t.Fatalf("RetryAfter = %s, want 3s", oe.RetryAfter)
	}
	var ae *v1.Error
	if !errors.As(err, &ae) || ae.Code != v1.CodeOverloaded {
		t.Fatalf("envelope not exposed through Unwrap: %v", err)
	}
	if calls.Load() != 1 {
		t.Fatalf("shed request attempted %d times, want 1 (no retry burn)", calls.Load())
	}
	if len(waits) != 0 {
		t.Fatalf("client slept %d times on a shed, want 0", len(waits))
	}
}

// A 503 WITHOUT the overloaded code keeps its retry semantics.
func TestPlainUnavailableStillRetried(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.WriteHeader(503)
			_ = json.NewEncoder(w).Encode(v1.ErrorEnvelope{Error: &v1.Error{
				Code: v1.CodeUnavailable, Message: "bus draining", Status: 503,
			}})
			return
		}
		_ = json.NewEncoder(w).Encode(v1.PutResponse{Accepted: 1})
	}))
	defer srv.Close()
	c, _ := New(srv.URL, WithHTTPClient(srv.Client()), WithRetry(2, time.Millisecond))
	var waits []time.Duration
	c.sleep = noSleep(&waits)
	n, err := c.PutPoints(context.Background(), []v1.Point{{Metric: "energy", Timestamp: 1, Value: 2}})
	if err != nil || n != 1 {
		t.Fatalf("put = %d, %v", n, err)
	}
	if calls.Load() != 2 {
		t.Fatalf("attempts = %d, want 2", calls.Load())
	}
}

func TestNoRetryOnClientError(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(404)
		_ = json.NewEncoder(w).Encode(v1.ErrorEnvelope{Error: &v1.Error{
			Code: v1.CodeNotFound, Message: "unknown unit 99", Status: 404,
		}})
	}))
	defer srv.Close()
	c, _ := New(srv.URL, WithHTTPClient(srv.Client()))
	_, err := c.Machine(context.Background(), 99, 0, 10)
	var ae *v1.Error
	if !errors.As(err, &ae) || ae.Code != v1.CodeNotFound {
		t.Fatalf("err = %v", err)
	}
	if calls.Load() != 1 {
		t.Fatalf("client retried a 404 (%d calls)", calls.Load())
	}
}

func TestDetectorsTyped(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/api/v1/detectors" {
			http.NotFound(w, r)
			return
		}
		_ = json.NewEncoder(w).Encode(v1.DetectorsResponse{
			Primary: "mgd",
			Detectors: []v1.DetectorInfo{
				{Name: "mgd", Mode: "primary", Flags: 12},
				{Name: "cusum", Mode: "shadow", Flags: 9, Agreements: 8, Disagreements: 1},
				{Name: "iforest", Mode: "off"},
			},
			Ensemble: v1.EnsembleConfig{Members: []string{"cusum", "zscore", "iforest"}, MinVotes: 2},
		})
	}))
	defer srv.Close()
	c, _ := New(srv.URL, WithHTTPClient(srv.Client()))
	ds, err := c.Detectors(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if ds.Primary != "mgd" || len(ds.Detectors) != 3 {
		t.Fatalf("unexpected response: %+v", ds)
	}
	if ds.Detectors[1].Mode != "shadow" || ds.Detectors[1].Agreements != 8 {
		t.Fatalf("shadow counters lost: %+v", ds.Detectors[1])
	}
	if ds.Ensemble.MinVotes != 2 || len(ds.Ensemble.Members) != 3 {
		t.Fatalf("ensemble config lost: %+v", ds.Ensemble)
	}
}

func TestNonEnvelopeErrorSynthesized(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "plain text failure", 500)
	}))
	defer srv.Close()
	c, _ := New(srv.URL, WithHTTPClient(srv.Client()))
	_, err := c.Fleet(context.Background(), FleetParams{})
	var ae *v1.Error
	if !errors.As(err, &ae) || ae.Status != 500 || ae.Message != "plain text failure" {
		t.Fatalf("err = %v", err)
	}
}

// TestReadyReturnsNotReadyDetail: a 503 from /readyz is the answer,
// not backpressure — no retries, and the per-check detail comes back.
func TestReadyReturnsNotReadyDetail(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(503)
		_ = json.NewEncoder(w).Encode(v1.ReadyResponse{
			Ready:  false,
			Checks: []v1.ReadyCheck{{Name: "bus", OK: false, Error: "draining"}},
		})
	}))
	defer srv.Close()
	c, _ := New(srv.URL, WithHTTPClient(srv.Client()))
	ready, err := c.Ready(context.Background())
	if err != nil {
		t.Fatalf("Ready = %v, want the not-ready detail", err)
	}
	if ready.Ready || len(ready.Checks) != 1 || ready.Checks[0].Name != "bus" {
		t.Fatalf("detail = %+v", ready)
	}
	if calls.Load() != 1 {
		t.Fatalf("Ready retried a 503 (%d calls)", calls.Load())
	}
}

func TestAPIKeyHeaderSent(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Header.Get("X-API-Key") != "tenant-7" {
			w.WriteHeader(400)
			return
		}
		_ = json.NewEncoder(w).Encode(v1.ReadyResponse{Ready: true})
	}))
	defer srv.Close()
	c, _ := New(srv.URL, WithHTTPClient(srv.Client()), WithAPIKey("tenant-7"))
	ready, err := c.Ready(context.Background())
	if err != nil || !ready.Ready {
		t.Fatalf("ready = %+v, %v", ready, err)
	}
}

func TestStreamParsesEvents(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", v1.ContentTypeSSE)
		fl := w.(http.Flusher)
		fmt.Fprint(w, ": connected\n\n")
		fl.Flush()
		fmt.Fprint(w, ": ping\n\n")
		for i := 0; i < 2; i++ {
			ev := v1.AnomalyEvent{Unit: i, Sensor: 3, Timestamp: int64(100 + i), Z: 5.5}
			data, _ := json.Marshal(ev)
			fmt.Fprintf(w, "event: anomaly\nid: %d\ndata: %s\n\n", i+1, data)
			fl.Flush()
		}
	}))
	defer srv.Close()
	c, _ := New(srv.URL, WithHTTPClient(srv.Client()))
	stream, err := c.StreamAnomalies(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Close()
	for i := 0; i < 2; i++ {
		ev, err := stream.Next()
		if err != nil {
			t.Fatalf("event %d: %v", i, err)
		}
		if ev.Unit != i || ev.Sensor != 3 || ev.Z != 5.5 {
			t.Fatalf("event %d = %+v", i, ev)
		}
	}
	if _, err := stream.Next(); !errors.Is(err, io.EOF) {
		t.Fatalf("end of stream err = %v, want io.EOF", err)
	}
}

func TestStreamRejectsNonSSE(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_ = json.NewEncoder(w).Encode(map[string]string{"not": "a stream"})
	}))
	defer srv.Close()
	c, _ := New(srv.URL, WithHTTPClient(srv.Client()))
	if _, err := c.StreamAnomalies(context.Background()); err == nil {
		t.Fatal("accepted a non-SSE response")
	}
}

func TestBadBaseURL(t *testing.T) {
	if _, err := New("not a url"); err == nil {
		t.Fatal("accepted a bad base URL")
	}
	if _, err := New(""); err == nil {
		t.Fatal("accepted an empty base URL")
	}
}

// TestRetryBackoffJittered: retry waits are full-jitter exponential —
// each within [d/2, d] of the exponential schedule, and not marching
// in deterministic lockstep.
func TestRetryBackoffJittered(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(503)
		_ = json.NewEncoder(w).Encode(v1.ErrorEnvelope{Error: &v1.Error{
			Code: v1.CodeUnavailable, Message: "shedding", Status: 503,
		}})
	}))
	defer srv.Close()
	c, _ := New(srv.URL, WithHTTPClient(srv.Client()), WithRetry(6, 100*time.Millisecond))
	c.backoff.Rand = resilience.NewRand(3)
	var waits []time.Duration
	c.sleep = noSleep(&waits)
	if _, err := c.Fleet(context.Background(), FleetParams{}); err == nil {
		t.Fatal("fleet succeeded against a 503-only server")
	}
	if len(waits) != 6 {
		t.Fatalf("recorded %d waits, want 6", len(waits))
	}
	jittered := false
	for i, w := range waits {
		full := 100 * time.Millisecond << i
		if full > 8*time.Second {
			full = 8 * time.Second
		}
		if w < full/2 || w > full {
			t.Fatalf("wait %d = %s outside [%s, %s]", i, w, full/2, full)
		}
		if w != full {
			jittered = true
		}
	}
	if !jittered {
		t.Fatal("every wait hit the full exponential delay: no jitter applied")
	}
}
