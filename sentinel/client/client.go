// Package client is the Go SDK for the /api/v1 gateway: a typed,
// context-aware HTTP client sharing its DTOs with the server
// (internal/api/v1), with retry-with-backoff on 429/503/504 and the
// server's error envelope surfaced as *v1.Error.
//
// Minimal use:
//
//	c, _ := client.New("http://localhost:8080")
//	c.PutPoints(ctx, []v1.Point{{Metric: "energy", Timestamp: 1, Value: 2.5,
//	    Tags: map[string]string{"unit": "0", "sensor": "0"}}})
//	page, _ := c.Fleet(ctx, client.FleetParams{})
//	stream, _ := c.StreamAnomalies(ctx)
//	for {
//	    ev, err := stream.Next()
//	    …
//	}
//
// Writes are safe to retry wholesale — point writes are idempotent —
// so the client retries POST /points on 429/503/504 exactly like
// reads.
//
// The exception is admission-controlled shedding: a 503 whose code is
// "overloaded" means the gateway deliberately rejected the request to
// protect itself, and hammering it with retries defeats the point. The
// client surfaces those immediately as *OverloadedError (match with
// errors.Is(err, ErrOverloaded)) carrying the server's Retry-After, so
// callers decide whether to back off, downshift, or drop.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	v1 "repro/internal/api/v1"
	"repro/internal/resilience"
)

// Client talks to one gateway. Safe for concurrent use.
type Client struct {
	base    string
	hc      *http.Client
	apiKey  string
	retries int
	backoff resilience.Backoff
	sleep   func(ctx context.Context, d time.Duration) error
}

// Option customizes a Client.
type Option func(*Client)

// WithHTTPClient substitutes the transport (tests pass
// httptest.Server.Client()).
func WithHTTPClient(hc *http.Client) Option { return func(c *Client) { c.hc = hc } }

// WithAPIKey sends key as X-API-Key, the gateway's rate-limit and
// logging identity.
func WithAPIKey(key string) Option { return func(c *Client) { c.apiKey = key } }

// WithRetry tunes retry-on-backpressure: up to retries re-attempts
// with full-jitter exponential backoff starting at base (server
// Retry-After wins when longer — it is a floor, never jittered below).
// WithRetry(0, …) disables retries.
func WithRetry(retries int, base time.Duration) Option {
	return func(c *Client) {
		c.retries = retries
		c.backoff.Base = base
	}
}

// New builds a client for the gateway at baseURL.
func New(baseURL string, opts ...Option) (*Client, error) {
	u, err := url.Parse(baseURL)
	if err != nil || u.Scheme == "" || u.Host == "" {
		return nil, fmt.Errorf("client: bad base URL %q", baseURL)
	}
	c := &Client{
		base:    strings.TrimRight(baseURL, "/"),
		hc:      http.DefaultClient,
		retries: 3,
		// Full jitter desynchronizes a fleet of SDK clients retrying
		// the same shedding gateway (each delay is uniform in
		// [d/2, d]); the cap keeps tail waits bounded.
		backoff: resilience.Backoff{Base: 250 * time.Millisecond, Factor: 2, Max: 8 * time.Second, Jitter: true},
		sleep: func(ctx context.Context, d time.Duration) error {
			t := time.NewTimer(d)
			defer t.Stop()
			select {
			case <-t.C:
				return nil
			case <-ctx.Done():
				return ctx.Err()
			}
		},
	}
	for _, o := range opts {
		o(c)
	}
	return c, nil
}

// retryable reports whether status is worth another attempt: the
// gateway sheds load with 429 (rate limit) and 503 (concurrency/bus),
// and 504 marks publish backpressure that outlived the deadline.
func retryable(status int) bool {
	return status == http.StatusTooManyRequests ||
		status == http.StatusServiceUnavailable ||
		status == http.StatusGatewayTimeout
}

// ErrOverloaded marks a request the gateway's admission controller
// shed (503 with code "overloaded"). Unlike other 503s it is returned
// immediately, without burning the retry budget: the server asked the
// fleet to slow down, and the right response is the caller's to make.
var ErrOverloaded = errors.New("client: gateway overloaded")

// OverloadedError is the typed form of an admission shed. It matches
// both errors.Is(err, ErrOverloaded) and errors.As(err, **v1.Error).
type OverloadedError struct {
	// RetryAfter is the server's suggested backoff (zero when the
	// response carried none).
	RetryAfter time.Duration
	// Err is the decoded v1 error envelope.
	Err *v1.Error
}

func (e *OverloadedError) Error() string {
	return fmt.Sprintf("client: gateway overloaded (retry after %s): %s", e.RetryAfter, e.Err.Message)
}

// Unwrap exposes both the ErrOverloaded sentinel and the envelope.
func (e *OverloadedError) Unwrap() []error { return []error{ErrOverloaded, e.Err} }

// do executes one request with retries; body may be nil. The returned
// response body is the caller's to close.
func (c *Client) do(ctx context.Context, method, path string, contentType string, body []byte, accept string) (*http.Response, error) {
	var lastErr error
	for attempt := 0; ; attempt++ {
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
		if err != nil {
			return nil, fmt.Errorf("client: %w", err)
		}
		if contentType != "" {
			req.Header.Set("Content-Type", contentType)
		}
		if accept != "" {
			req.Header.Set("Accept", accept)
		}
		if c.apiKey != "" {
			req.Header.Set("X-API-Key", c.apiKey)
		}
		resp, err := c.hc.Do(req)
		if err != nil {
			lastErr = err
		} else if !retryable(resp.StatusCode) {
			return resp, nil
		} else {
			lastErr = decodeError(resp) // reads and closes the body
			var ae *v1.Error
			if resp.StatusCode == http.StatusServiceUnavailable &&
				errors.As(lastErr, &ae) && ae.Code == v1.CodeOverloaded {
				// A deliberate admission shed: retrying into an
				// overloaded gateway is exactly the load it is trying
				// to lose. Surface it typed, immediately.
				return nil, &OverloadedError{
					RetryAfter: time.Duration(ae.RetryAfterSeconds) * time.Second,
					Err:        ae,
				}
			}
		}
		if attempt >= c.retries || ctx.Err() != nil {
			if lastErr == nil {
				lastErr = ctx.Err()
			}
			return nil, lastErr
		}
		wait := c.backoff.Delay(attempt)
		var ae *v1.Error
		if errors.As(lastErr, &ae) && ae.RetryAfterSeconds > 0 {
			// The server's Retry-After is a floor: jitter may stretch
			// the wait beyond it but never revisit the server sooner.
			if ra := time.Duration(ae.RetryAfterSeconds) * time.Second; ra > wait {
				wait = ra
			}
		}
		if err := c.sleep(ctx, wait); err != nil {
			return nil, lastErr
		}
	}
}

// decodeError turns a non-2xx response into a *v1.Error, synthesizing
// one when the body is not the envelope. It closes the body.
func decodeError(resp *http.Response) error {
	defer resp.Body.Close()
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	var env v1.ErrorEnvelope
	if err := json.Unmarshal(raw, &env); err == nil && env.Error != nil {
		if env.Error.RetryAfterSeconds == 0 {
			if s, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil {
				env.Error.RetryAfterSeconds = s
			}
		}
		return env.Error
	}
	return &v1.Error{
		Code:    v1.CodeInternal,
		Message: strings.TrimSpace(string(raw)),
		Status:  resp.StatusCode,
	}
}

// getJSON fetches path and decodes the body into out.
func (c *Client) getJSON(ctx context.Context, path string, out any) error {
	resp, err := c.do(ctx, http.MethodGet, path, "", nil, v1.ContentTypeJSON)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return decodeErrorKeepOpen(resp)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// decodeErrorKeepOpen is decodeError for bodies the caller closes.
func decodeErrorKeepOpen(resp *http.Response) error {
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	var env v1.ErrorEnvelope
	if err := json.Unmarshal(raw, &env); err == nil && env.Error != nil {
		return env.Error
	}
	return &v1.Error{Code: v1.CodeInternal, Message: strings.TrimSpace(string(raw)), Status: resp.StatusCode}
}

// PutPoints writes points through POST /api/v1/points and returns how
// many the gateway accepted onto the ingestion log.
func (c *Client) PutPoints(ctx context.Context, points []v1.Point) (int, error) {
	body, err := json.Marshal(v1.PutRequest{Points: points})
	if err != nil {
		return 0, fmt.Errorf("client: marshal points: %w", err)
	}
	resp, err := c.do(ctx, http.MethodPost, v1.PathPrefix+"/points", v1.ContentTypeJSON, body, v1.ContentTypeJSON)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, decodeErrorKeepOpen(resp)
	}
	var out v1.PutResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return 0, fmt.Errorf("client: decode put response: %w", err)
	}
	return out.Accepted, nil
}

// QueryParams selects raw series for Query.
type QueryParams struct {
	Metric    string // default "energy"
	Unit      string // optional tag filter
	Sensor    string // optional tag filter
	From, To  int64
	MaxPoints int // LTTB render bound; 0 = exact
}

func (p QueryParams) encode() string {
	q := url.Values{}
	if p.Metric != "" {
		q.Set("metric", p.Metric)
	}
	if p.Unit != "" {
		q.Set("unit", p.Unit)
	}
	if p.Sensor != "" {
		q.Set("sensor", p.Sensor)
	}
	q.Set("from", strconv.FormatInt(p.From, 10))
	q.Set("to", strconv.FormatInt(p.To, 10))
	if p.MaxPoints > 0 {
		q.Set("maxpoints", strconv.Itoa(p.MaxPoints))
	}
	return q.Encode()
}

// Query fetches raw series through the gateway's cached query tier.
func (c *Client) Query(ctx context.Context, p QueryParams) ([]v1.Series, error) {
	var out v1.QueryResponse
	if err := c.getJSON(ctx, v1.PathPrefix+"/query?"+p.encode(), &out); err != nil {
		return nil, err
	}
	return out.Series, nil
}

// QueryNDJSON fetches the same series as one NDJSON line per series,
// invoking fn for each — the bulk-transfer spelling.
func (c *Client) QueryNDJSON(ctx context.Context, p QueryParams, fn func(v1.Series) error) error {
	resp, err := c.do(ctx, http.MethodGet, v1.PathPrefix+"/query?"+p.encode(), "", nil, v1.ContentTypeNDJSON)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return decodeErrorKeepOpen(resp)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, v1.ContentTypeNDJSON) {
		return fmt.Errorf("client: server did not negotiate NDJSON (got %q)", ct)
	}
	dec := json.NewDecoder(resp.Body)
	for {
		var s v1.Series
		if err := dec.Decode(&s); err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			return fmt.Errorf("client: decode NDJSON: %w", err)
		}
		if err := fn(s); err != nil {
			return err
		}
	}
}

// FleetParams tunes a Fleet page fetch. Zero From/To use the server's
// default window.
type FleetParams struct {
	From, To int64
	Limit    int
	Cursor   string
}

// Fleet fetches one page of unit summaries; follow
// page.NextCursor for the rest (or use FleetAll).
func (c *Client) Fleet(ctx context.Context, p FleetParams) (*v1.FleetPage, error) {
	q := url.Values{}
	if p.From != 0 || p.To != 0 {
		q.Set("from", strconv.FormatInt(p.From, 10))
		q.Set("to", strconv.FormatInt(p.To, 10))
	}
	if p.Limit > 0 {
		q.Set("limit", strconv.Itoa(p.Limit))
	}
	if p.Cursor != "" {
		q.Set("cursor", p.Cursor)
	}
	path := v1.PathPrefix + "/fleet"
	if enc := q.Encode(); enc != "" {
		path += "?" + enc
	}
	var out v1.FleetPage
	if err := c.getJSON(ctx, path, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// FleetAll walks every page and returns the concatenated summaries
// (aggregates come from the first page — they are fleet-wide on every
// page).
func (c *Client) FleetAll(ctx context.Context, p FleetParams) (*v1.FleetPage, error) {
	p.Cursor = ""
	first, err := c.Fleet(ctx, p)
	if err != nil {
		return nil, err
	}
	for cursor := first.NextCursor; cursor != ""; {
		p.Cursor = cursor
		page, err := c.Fleet(ctx, p)
		if err != nil {
			return nil, err
		}
		first.Units = append(first.Units, page.Units...)
		cursor = page.NextCursor
	}
	first.NextCursor = ""
	return first, nil
}

// Machine fetches the per-machine view.
func (c *Client) Machine(ctx context.Context, unit int, from, to int64) (*v1.MachineView, error) {
	var out v1.MachineView
	path := fmt.Sprintf("%s/machines/%d?from=%d&to=%d", v1.PathPrefix, unit, from, to)
	if err := c.getJSON(ctx, path, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Sensor fetches one sensor's drill-down.
func (c *Client) Sensor(ctx context.Context, unit, sensor int, from, to int64) (*v1.SeriesDetail, error) {
	var out v1.SeriesDetail
	path := fmt.Sprintf("%s/machines/%d/sensors/%d?from=%d&to=%d", v1.PathPrefix, unit, sensor, from, to)
	if err := c.getJSON(ctx, path, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// TopAnomalies fetches the severity ranking.
func (c *Client) TopAnomalies(ctx context.Context, from, to int64, limit int) ([]v1.TopAnomaly, error) {
	path := fmt.Sprintf("%s/anomalies/top?from=%d&to=%d", v1.PathPrefix, from, to)
	if limit > 0 {
		path += "&limit=" + strconv.Itoa(limit)
	}
	var out v1.TopResponse
	if err := c.getJSON(ctx, path, &out); err != nil {
		return nil, err
	}
	return out.Anomalies, nil
}

// Detectors fetches the detector tier status: every registered
// family with its mode (primary / shadow / off), flag and
// shadow-agreement counters, and the effective ensemble config.
func (c *Client) Detectors(ctx context.Context) (*v1.DetectorsResponse, error) {
	var out v1.DetectorsResponse
	if err := c.getJSON(ctx, v1.PathPrefix+"/detectors", &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Cluster fetches the cluster membership map: every live node with
// its roles, rpc endpoint, TSD routes and bus leadership state. A
// single-process server reports one node holding every role.
func (c *Client) Cluster(ctx context.Context) (*v1.ClusterResponse, error) {
	var out v1.ClusterResponse
	if err := c.getJSON(ctx, v1.PathPrefix+"/cluster", &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Health probes liveness.
func (c *Client) Health(ctx context.Context) error {
	resp, err := c.do(ctx, http.MethodGet, "/healthz", "", nil, "")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return decodeErrorKeepOpen(resp)
	}
	return nil
}

// Ready probes readiness; the per-dependency detail is returned even
// when not ready (err is non-nil iff the transport failed). It
// deliberately bypasses the retry loop: a 503 here is the answer —
// "not ready, and here is why" — not backpressure to wait out.
func (c *Client) Ready(ctx context.Context) (*v1.ReadyResponse, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/readyz", nil)
	if err != nil {
		return nil, fmt.Errorf("client: %w", err)
	}
	req.Header.Set("Accept", v1.ContentTypeJSON)
	if c.apiKey != "" {
		req.Header.Set("X-API-Key", c.apiKey)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var out v1.ReadyResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("client: decode readyz: %w", err)
	}
	return &out, nil
}

// Metrics fetches the exposition text.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	resp, err := c.do(ctx, http.MethodGet, v1.PathPrefix+"/metrics", "", nil, "")
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", decodeErrorKeepOpen(resp)
	}
	raw, err := io.ReadAll(resp.Body)
	return string(raw), err
}
