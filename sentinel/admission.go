package sentinel

import (
	"repro/internal/admission"
)

// AdmissionSignals returns the system's standard overload signals for
// an admission controller:
//
//   - storage consumer lag — records published but not yet durably
//     committed by the storage group, against lagLimit. Lag growing
//     toward the bus's buffered capacity is the earliest sign the
//     write path is saturating: once a partition's uncommitted window
//     fills, publishes block and ingest latency explodes. lagLimit 0
//     defaults to half the bus's total buffered capacity
//     (Partitions × BusBuffer / 2), so shedding starts while publish
//     is still non-blocking.
//   - ingestion proxy queue depth against its buffer, catching a
//     stalled downstream before the bus signal moves.
func (s *System) AdmissionSignals(lagLimit int64) []admission.Signal {
	if lagLimit <= 0 {
		buf := s.cfg.BusBuffer
		if buf <= 0 {
			buf = 1024 // the bus package default (unbounded gets the same budget)
		}
		lagLimit = int64(s.cfg.Partitions) * int64(buf) / 2
	}
	pbuf := s.cfg.ProxyBuffer
	if pbuf <= 0 {
		pbuf = 1024 // ingest.Config.BufferBatches default
	}
	return []admission.Signal{
		{Name: "storage_lag", Load: s.storage.Lag, Limit: lagLimit},
		{Name: "proxy_queue", Load: s.Proxy.QueueDepth.Value, Limit: int64(pbuf)},
	}
}

// NewAdmissionController builds an adaptive overload controller wired
// to the system's load signals (AdmissionSignals). lagLimit is the
// storage-lag budget in records (0: half the bus's buffered capacity).
// Extra caller signals in cfg.Signals are kept; pass the result to
// GatewayConfig.Admission.
func (s *System) NewAdmissionController(lagLimit int64, cfg admission.Config) *admission.Controller {
	cfg.Signals = append(cfg.Signals, s.AdmissionSignals(lagLimit)...)
	return admission.NewController(cfg)
}

// AutoscaleDetectors starts a consumer-lag-driven autoscaler over
// pool: when the detector group's lag crosses cfg.ScaleUpLag the pool
// grows a worker (new member, rebalance), and when it drains below
// cfg.ScaleDownLag the tail worker retires. ScaleUpLag 0 defaults to
// a quarter of the bus's buffered capacity; Max 0 defaults to the
// partition count (more members than partitions sit idle). Stop the
// returned autoscaler before the pool.
func (s *System) AutoscaleDetectors(pool *DetectorPool, cfg admission.AutoscaleConfig) *admission.Autoscaler {
	if cfg.ScaleUpLag <= 0 {
		buf := s.cfg.BusBuffer
		if buf <= 0 {
			buf = 1024
		}
		cfg.ScaleUpLag = int64(s.cfg.Partitions) * int64(buf) / 4
	}
	if cfg.Max <= 0 {
		cfg.Max = s.cfg.Partitions
	}
	a := admission.NewAutoscaler(pool.Group().Lag, pool.Workers, pool.Resize, cfg)
	a.Start()
	return a
}
