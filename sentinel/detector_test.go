package sentinel

import (
	"context"
	"testing"

	"repro/internal/bus"
	"repro/internal/fdr"
	"repro/internal/tsdb"
)

// TestStreamingDetection drives the full bus pipeline: training data
// through the commit log into storage, models trained, then a live
// window published once more — consumed in parallel by the storage
// writers and the detector pool, which must evaluate every sample and
// write flags back to the "anomaly" metric.
func TestStreamingDetection(t *testing.T) {
	sys, err := New(Config{
		StorageNodes:   2,
		Units:          4,
		SensorsPerUnit: 12,
		Seed:           7,
		FaultFraction:  0.6,
		FaultOnset:     60,
		ShiftSigma:     8,
		Procedure:      fdr.BH,
		Partitions:     4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()

	if _, err := sys.IngestRange(0, 60); err != nil {
		t.Fatal(err)
	}
	if err := sys.TrainFromTSDB(0, 60, true); err != nil {
		t.Fatal(err)
	}

	pool := sys.StartDetectors(2)
	const steps = 20
	stats, err := sys.IngestRange(60, steps)
	if err != nil {
		t.Fatal(err)
	}
	want := int64(4 * 12 * steps)
	if stats.Samples != want {
		t.Fatalf("ingested %d samples, want %d", stats.Samples, want)
	}
	if err := pool.Sync(context.Background()); err != nil {
		t.Fatal(err)
	}
	// The pool saw exactly the post-attach window, not the training
	// range it seeked past.
	if got := pool.SamplesEvaluated.Value(); got != want {
		t.Fatalf("pool evaluated %d samples, want %d", got, want)
	}
	if pool.Errors.Value() != 0 {
		t.Fatalf("pool hit %d errors", pool.Errors.Value())
	}
	if pool.AnomaliesWritten.Value() == 0 {
		t.Fatal("faulty fleet produced no flags through the streaming path")
	}
	// Flags are queryable from storage: the Figure 1 feedback edge.
	series, err := sys.TSDB.TSDs()[0].Query(tsdb.Query{
		Metric: tsdb.MetricAnomaly,
		Start:  60,
		End:    60 + steps,
	})
	if err != nil {
		t.Fatal(err)
	}
	flags := 0
	for _, s := range series {
		flags += len(s.Samples)
	}
	if int64(flags) != pool.AnomaliesWritten.Value() {
		t.Fatalf("storage holds %d flags, pool wrote %d", flags, pool.AnomaliesWritten.Value())
	}

	// Stopping the pool detaches its group: ingestion keeps flowing
	// without detector commits gating the window.
	pool.Stop()
	if _, err := sys.IngestRange(60+steps, 5); err != nil {
		t.Fatal(err)
	}
}

// TestDetectorPoolScalesMembers proves a worker crash mid-stream only
// rebalances: the surviving members take over the partitions and
// nothing published is lost (every sample evaluated at least once).
func TestDetectorPoolRebalanceKeepsEvaluating(t *testing.T) {
	sys, err := New(Config{
		StorageNodes:   2,
		Units:          6,
		SensorsPerUnit: 8,
		Seed:           11,
		Partitions:     6,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	if _, err := sys.IngestRange(0, 40); err != nil {
		t.Fatal(err)
	}
	if err := sys.TrainFromTSDB(0, 40, true); err != nil {
		t.Fatal(err)
	}
	pool := sys.StartDetectors(3)
	if _, err := sys.IngestRange(40, 10); err != nil {
		t.Fatal(err)
	}
	// Lose a member mid-stream: Leave redistributes its partitions.
	dg := pool.group.(bus.LocalGroup).Group
	gen := dg.Generation()
	pool.group.Join().Leave() // join/leave forces two rebalances
	if dg.Generation() == gen {
		t.Fatal("membership churn did not bump the generation")
	}
	if _, err := sys.IngestRange(50, 10); err != nil {
		t.Fatal(err)
	}
	if err := pool.Sync(context.Background()); err != nil {
		t.Fatal(err)
	}
	// At-least-once: every published sample evaluated one or more
	// times (redelivery across the rebalance may add duplicates).
	want := int64(6 * 8 * 20)
	if got := pool.SamplesEvaluated.Value(); got < want {
		t.Fatalf("pool evaluated %d samples, want >= %d", got, want)
	}
}

// TestDetectorPoolResize drives the autoscaler's lever directly: grow
// the pool mid-stream (new members join, the group rebalances onto
// them), shrink it back below the start (tail workers retire after
// their in-flight poll), and verify at-least-once evaluation holds
// across both transitions.
func TestDetectorPoolResize(t *testing.T) {
	sys, err := New(Config{
		StorageNodes:   2,
		Units:          6,
		SensorsPerUnit: 8,
		Seed:           13,
		Partitions:     6,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	if _, err := sys.IngestRange(0, 40); err != nil {
		t.Fatal(err)
	}
	if err := sys.TrainFromTSDB(0, 40, true); err != nil {
		t.Fatal(err)
	}
	pool := sys.StartDetectors(2)
	if got := pool.Workers(); got != 2 {
		t.Fatalf("Workers() = %d, want 2", got)
	}

	if _, err := sys.IngestRange(40, 10); err != nil {
		t.Fatal(err)
	}
	pool.Resize(4)
	if got := pool.Workers(); got != 4 {
		t.Fatalf("after grow Workers() = %d, want 4", got)
	}
	if _, err := sys.IngestRange(50, 10); err != nil {
		t.Fatal(err)
	}
	pool.Resize(1)
	if got := pool.Workers(); got != 1 {
		t.Fatalf("after shrink Workers() = %d, want 1", got)
	}
	if _, err := sys.IngestRange(60, 10); err != nil {
		t.Fatal(err)
	}
	if err := pool.Sync(context.Background()); err != nil {
		t.Fatal(err)
	}
	// At-least-once across both rebalances.
	want := int64(6 * 8 * 30)
	if got := pool.SamplesEvaluated.Value(); got < want {
		t.Fatalf("pool evaluated %d samples, want >= %d", got, want)
	}

	// Resize clamps to one worker and goes quiet after Stop.
	pool.Resize(0)
	if got := pool.Workers(); got != 1 {
		t.Fatalf("Resize(0) left Workers() = %d, want clamp to 1", got)
	}
	pool.Stop()
	pool.Resize(3)
	if got := pool.Workers(); got != 0 {
		t.Fatalf("Resize after Stop left Workers() = %d, want 0", got)
	}
}
