package sentinel

import (
	"context"
	"net"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"
	"time"

	v1 "repro/internal/api/v1"
	"repro/sentinel/client"
)

// startTestCluster boots a four-node cluster over loopback TCP: a
// broker, two stores, and a combined detect+gateway node hosting the
// coordination service. Listeners are pre-bound so the peer map is
// known before any node starts; nodes boot concurrently because each
// blocks on the others (stores need the gateway's coordination
// service, the gateway waits for both stores).
func startTestCluster(t *testing.T) map[string]*Node {
	t.Helper()
	roles := map[string][]Role{
		"broker":  {RoleBroker},
		"store-1": {RoleStore},
		"store-2": {RoleStore},
		"dg":      {RoleDetect, RoleGateway},
	}
	peers := make(map[string]string)
	listeners := make(map[string]net.Listener)
	for name := range roles {
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[name] = lis
		peers[name] = lis.Addr().String()
	}
	var (
		mu    sync.Mutex
		wg    sync.WaitGroup
		nodes = make(map[string]*Node)
		errs  = make(map[string]error)
	)
	t.Cleanup(func() {
		wg.Wait()
		for _, n := range nodes {
			if n != nil {
				n.Close()
			}
		}
	})
	start := func(name string) {
		n, err := StartNode(NodeConfig{
			Name:            name,
			Roles:           roles[name],
			Listener:        listeners[name],
			Peers:           peers,
			ZKNode:          "dg",
			Partitions:      4,
			Units:           4,
			SensorsPerUnit:  3,
			StorageNodes:    2,
			StorageWriters:  2,
			DetectorWorkers: 2,
			ExpectStores:    2,
			DetectorParams:  map[string]float64{"warmup": 20},
			BootTimeout:     60 * time.Second,
		})
		mu.Lock()
		nodes[name], errs[name] = n, err
		mu.Unlock()
	}
	// The gateway boots concurrently: it hosts the coordination
	// service (which every other node's boot blocks on) but itself
	// waits for both stores to register.
	wg.Add(1)
	go func() { defer wg.Done(); start("dg") }()
	// The broker boots next and must win the initial bus election
	// before the stores join it, so the failover phase deterministically
	// kills a leader with store followers behind it.
	start("broker")
	mu.Lock()
	broker, berr := nodes["broker"], errs["broker"]
	mu.Unlock()
	if berr != nil {
		t.Fatalf("boot broker: %v", berr)
	}
	for start := time.Now(); !broker.BusSvc.IsLeader(0); {
		if time.Since(start) > 30*time.Second {
			t.Fatal("broker never won the initial bus election")
		}
		time.Sleep(20 * time.Millisecond)
	}
	for _, name := range []string{"store-1", "store-2"} {
		wg.Add(1)
		go func(name string) { defer wg.Done(); start(name) }(name)
	}
	wg.Wait()
	for name, err := range errs {
		if err != nil {
			t.Fatalf("boot %s: %v", name, err)
		}
	}
	return nodes
}

// TestClusterEndToEnd drives the existing e2e flow through a
// four-process-shaped cluster (in-process here; cmd/clustersmoke runs
// the same topology as real OS processes): SDK ingest through the
// gateway onto the replicated bus, storage writers on both store
// nodes, streaming detection on the detect node writing flags back
// over rpc, scatter-gather reads merging both store groups, the SSE
// anomaly stream, and the membership map — then kills the broker and
// checks a store is promoted and ingest/query still work.
func TestClusterEndToEnd(t *testing.T) {
	nodes := startTestCluster(t)
	dg := nodes["dg"]
	ts := httptest.NewServer(dg.Handler())
	defer ts.Close()
	c, err := client.New(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	const (
		units, sensors = 4, 3
		warm           = 30 // past the detectors' shortened warmup
		spikes         = 10
	)

	// put writes one fleet-wide time step through the gateway,
	// retrying transient failures (a bus leadership handover in
	// flight), and returns how many samples the gateway acked.
	put := func(step int64, val func(u, s int) float64) int {
		pts := make([]v1.Point, 0, units*sensors)
		for u := 0; u < units; u++ {
			for s := 0; s < sensors; s++ {
				pts = append(pts, v1.Point{
					Metric:    "energy",
					Timestamp: step,
					Value:     val(u, s),
					Tags:      map[string]string{"unit": strconv.Itoa(u), "sensor": strconv.Itoa(s)},
				})
			}
		}
		deadline := time.Now().Add(60 * time.Second)
		for {
			n, err := c.PutPoints(ctx, pts)
			if err == nil {
				return n
			}
			if time.Now().After(deadline) {
				t.Fatalf("put step %d: %v", step, err)
			}
			time.Sleep(100 * time.Millisecond)
		}
	}
	// waitSamples polls the fanned-out query tier until the energy
	// series over [0, to] hold exactly want samples.
	waitSamples := func(to int64, want int) {
		deadline := time.Now().Add(60 * time.Second)
		for {
			series, err := c.Query(ctx, client.QueryParams{Metric: "energy", From: 0, To: to})
			got := 0
			if err == nil {
				for _, s := range series {
					got += len(s.Samples)
				}
				if got == want {
					return
				}
			}
			if time.Now().After(deadline) {
				t.Fatalf("waiting for %d samples through ts %d: have %d (err %v)", want, to, got, err)
			}
			time.Sleep(200 * time.Millisecond)
		}
	}

	// Subscribe the SSE tail before detection can fire so no flag is
	// missed.
	streamCtx, stopStream := context.WithCancel(ctx)
	defer stopStream()
	stream, err := c.StreamAnomalies(streamCtx)
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Close()
	events := make(chan v1.AnomalyEvent, 1)
	go func() {
		ev, err := stream.Next()
		if err == nil {
			events <- ev
		}
	}()

	// Baseline, then a gross level shift every detector must flag.
	acked := 0
	for step := int64(0); step < warm; step++ {
		acked += put(step, func(u, s int) float64 { return float64(10*u + s) })
	}
	for step := int64(warm); step < warm+spikes; step++ {
		acked += put(step, func(u, s int) float64 { return 1e6 })
	}
	if want := units * sensors * (warm + spikes); acked != want {
		t.Fatalf("acked %d samples, want %d", acked, want)
	}
	waitSamples(warm+spikes-1, acked)

	// The detect node must flag the shift: the flag arrives on the SSE
	// stream (published to the anomaly feed) and in storage (written
	// over rpc into the store tier, readable through the fanout).
	select {
	case ev := <-events:
		if ev.Z == 0 {
			t.Fatalf("flat anomaly event: %+v", ev)
		}
	case <-time.After(60 * time.Second):
		t.Fatalf("no anomaly event on the SSE stream (pool evaluated %d samples, wrote %d flags)",
			dg.Pool.SamplesEvaluated.Value(), dg.Pool.AnomaliesWritten.Value())
	}
	flagDeadline := time.Now().Add(60 * time.Second)
	for {
		series, err := c.Query(ctx, client.QueryParams{Metric: "anomaly", From: 0, To: warm + spikes})
		if err == nil && len(series) > 0 {
			break
		}
		if time.Now().After(flagDeadline) {
			t.Fatalf("no anomaly flags in storage: %v", err)
		}
		time.Sleep(200 * time.Millisecond)
	}

	// The membership map shows all four nodes, the store TSD routes,
	// and exactly one bus partition-group leader. Records refresh at
	// 1 Hz, so the map is eventually consistent — poll.
	mapDeadline := time.Now().Add(30 * time.Second)
	for {
		cm, err := c.Cluster(ctx)
		leaders, tsds := 0, 0
		if err == nil {
			for _, n := range cm.Nodes {
				leaders += len(n.PartitionGroupsLed)
				tsds += len(n.TSDs)
			}
			// Two stores × two TSDs.
			if len(cm.Nodes) == 4 && leaders == 1 && tsds == 4 {
				break
			}
		}
		if time.Now().After(mapDeadline) {
			t.Fatalf("cluster map never converged (err %v): %+v", err, cm)
		}
		time.Sleep(300 * time.Millisecond)
	}

	// Kill the broker. A store replica must be promoted (it holds every
	// acked record — publishes replicate synchronously before acking)
	// and ingest, storage and reads must keep working.
	nodes["broker"].Close()
	after := 0
	for step := int64(warm + spikes); step < warm+spikes+10; step++ {
		after += put(step, func(u, s int) float64 { return float64(10*u + s) })
	}
	waitSamples(warm+spikes+9, acked+after)
	promoted := false
	promDeadline := time.Now().Add(30 * time.Second)
	for !promoted {
		cm, err := c.Cluster(ctx)
		if err == nil {
			for _, n := range cm.Nodes {
				if n.Name != "broker" && len(n.PartitionGroupsLed) > 0 && n.Promotions > 0 {
					promoted = true
				}
			}
		}
		if !promoted {
			if time.Now().After(promDeadline) {
				t.Fatalf("no promoted store leader in map %+v", cm)
			}
			time.Sleep(300 * time.Millisecond)
		}
	}
}
