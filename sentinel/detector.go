package sentinel

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"time"

	"repro/internal/bus"
	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/ingest"
	"repro/internal/mllib"
	"repro/internal/resilience"
	"repro/internal/rpc"
	"repro/internal/telemetry"
	"repro/internal/tsdb"
)

// DetectorPool is the streaming half of the detector: a consumer group
// of worker goroutines, each owning a subset of the ingestion topic's
// partitions, scoring every published unit batch through the
// configured primary detector family and writing flags back to the
// "anomaly" metric. It is the architecture's answer to "detection
// consumers must scale independently of producers": workers can be
// added (more members → rebalance) without touching the ingest or
// storage tiers, and a slow or stopped pool never stalls storage
// writes because the storage group commits independently.
//
// Detection goes through the pluggable mllib.Detector interface
// (Config.PrimaryDetector; default "mgd", the trained MGD+FDR
// evaluator). Each worker owns its unit's detector instances and a
// private row-assembly scratch, preserving the zero-allocation steady
// state per worker — streaming families (cusum, zscore, iforest)
// carry per-unit state, and unit-keyed partitions guarantee a unit's
// batches reach one worker at a time, in order. On a rebalance a
// reassigned unit's streaming state restarts from its warmup on the
// new owner; the model-based family is stateless across batches and
// unaffected.
//
// When Config.ShadowDetectors is set the pool also runs those
// families in shadow mode: every evaluated batch is copied to an
// asynchronous runner that scores the shadows and counts row-level
// agreements and disagreements against the primary, without ever
// emitting flags or backpressuring the primary path (a slow shadow
// sheds batches instead).
//
// Workers are dedicated goroutines, not dataflow-engine tasks: the
// engine's bounded executor pool is shared with Detect's per-unit
// fan-out and the offline trainer, and parking long-lived consumers
// there would starve those batch jobs (or deadlock outright once
// workers outnumber executors).
type DetectorPool struct {
	env    DetectorEnv
	group  bus.GroupHandle
	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup
	once   sync.Once
	shadow *shadowRunner

	// wmu guards the per-worker cancel list (Resize/Workers) and the
	// stopped flag; each worker runs under its own child context so
	// one can be retired without stopping the pool.
	wmu     sync.Mutex
	workers []context.CancelFunc
	stopped bool

	// SamplesEvaluated counts sensor samples scored (the §IV-A
	// throughput unit); AnomaliesWritten counts flags written back.
	SamplesEvaluated telemetry.Counter
	AnomaliesWritten telemetry.Counter
	// Batches counts records processed; Errors counts records skipped
	// (missing model, malformed batch, storage write failure).
	Batches telemetry.Counter
	Errors  telemetry.Counter
	// FlagsPublished counts anomalies published onto the flag-feed
	// topic (the SSE tail's source); FlagPublishErrors counts feed
	// publishes that failed. The feed is best-effort: a failed publish
	// never fails the batch — the flag is already durable in storage.
	FlagsPublished    telemetry.Counter
	FlagPublishErrors telemetry.Counter
	// Parks counts park episodes (a worker pausing on a transient
	// storage fault instead of dropping the flag); Parked is how many
	// workers are parked right now. A parked worker retries its write
	// with jittered backoff and resumes where it left off — the record
	// is never committed while parked, so a crash redelivers it.
	Parks  telemetry.Counter
	Parked telemetry.Gauge
}

// transientStorage classifies errors worth parking on: the storage
// tier is momentarily unhealthy (daemon down or overloaded, injected
// fault, deadline) but expected back. Model/shape errors are not
// transient — retrying a malformed batch forever would wedge the
// partition.
func transientStorage(err error) bool {
	return errors.Is(err, rpc.ErrServerDown) ||
		errors.Is(err, rpc.ErrQueueOverflow) ||
		errors.Is(err, faultinject.ErrInjected) ||
		errors.Is(err, context.DeadlineExceeded)
}

// DetectorEnv is everything a DetectorPool needs to run, decoupled
// from System so a detect-only cluster node can operate a pool against
// a remote bus and a remote anomaly sink without booting the full
// single-process stack.
type DetectorEnv struct {
	// Sensors is the per-unit sensor count batches are validated
	// against.
	Sensors int
	// Primary is the registered detector family workers evaluate.
	Primary string
	// NewDetector constructs one unit's instance of a named family
	// (primary or shadow).
	NewDetector func(name string, unit int) (mllib.Detector, error)
	// Sink receives the flags workers write back to storage.
	Sink core.AnomalySink
	// Flags, when non-nil, is the flag-feed topic anomalies are
	// published onto while a consumer group (an SSE tail) is attached.
	Flags bus.TopicHandle
	// Shadows and ShadowBuffer configure the asynchronous shadow
	// runner (empty: none).
	Shadows      []string
	ShadowBuffer int
	// OnStop, when non-nil, runs once inside Stop after the workers
	// and shadow runner have halted; it owns group detachment (System
	// uses it for pool-registry bookkeeping). When nil, Stop closes
	// the group itself.
	OnStop func(p *DetectorPool)
}

// NewDetectorPool starts workers consumer-group members evaluating
// unit batches from group through env. Callers wanting System's group
// sharing and registry semantics use System.StartDetectors; cluster
// detect nodes build pools directly against a remote group.
func NewDetectorPool(env DetectorEnv, group bus.GroupHandle, workers int) *DetectorPool {
	if workers <= 0 {
		workers = 1
	}
	ctx, cancel := context.WithCancel(context.Background())
	p := &DetectorPool{env: env, group: group, ctx: ctx, cancel: cancel}
	if len(env.Shadows) > 0 {
		p.shadow = newShadowRunner(env.NewDetector, env.Shadows, env.ShadowBuffer)
	}
	// Join every member before the first worker polls, so the pool
	// starts on a settled assignment instead of rebalancing (and
	// redelivering) its way up.
	members := make([]bus.ConsumerHandle, workers)
	for i := range members {
		members[i] = group.Join()
	}
	p.wmu.Lock()
	for _, c := range members {
		p.startWorkerLocked(c)
	}
	p.wmu.Unlock()
	return p
}

// startWorkerLocked launches one member under its own cancellable
// child context. Caller holds p.wmu.
func (p *DetectorPool) startWorkerLocked(c bus.ConsumerHandle) {
	wctx, cancel := context.WithCancel(p.ctx)
	p.workers = append(p.workers, cancel)
	p.wg.Add(1)
	go p.worker(wctx, c)
}

// Workers reports the current worker count (autoscaler input).
func (p *DetectorPool) Workers() int {
	p.wmu.Lock()
	defer p.wmu.Unlock()
	return len(p.workers)
}

// Resize grows or shrinks the pool to n workers (clamped to ≥ 1).
// Growth joins new consumer-group members — the group rebalances
// partitions onto them; shrinking cancels workers from the tail, each
// finishing its in-flight poll before leaving the group (its record
// batch commits or redelivers per the at-least-once contract, exactly
// as on Stop). A reassigned unit's streaming detector state restarts
// from warmup on its new owner, as on any rebalance. No-op after Stop.
func (p *DetectorPool) Resize(n int) {
	if n < 1 {
		n = 1
	}
	p.wmu.Lock()
	defer p.wmu.Unlock()
	if p.stopped {
		return
	}
	for len(p.workers) < n {
		p.startWorkerLocked(p.group.Join())
	}
	for len(p.workers) > n {
		last := len(p.workers) - 1
		p.workers[last]()
		p.workers = p.workers[:last]
	}
}

// AttachDetectorGroup attaches the detector consumer group at the
// current end of the topic without starting workers: records published
// afterwards are retained (and, once the partition buffer fills, exert
// backpressure — set Config.BusBuffer negative for unbounded staging)
// until a later StartDetectors consumes them. Without it,
// StartDetectors itself attaches at the then-current end, skipping
// history. Idempotent while a group is attached.
func (s *System) AttachDetectorGroup() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.attachDetectorGroupLocked()
}

// attachDetectorGroupLocked is AttachDetectorGroup under s.mu, shared
// with StartDetectors so attach and pool registration happen in one
// critical section (a concurrent Stop cannot detach the group in
// between).
func (s *System) attachDetectorGroupLocked() bus.GroupHandle {
	if s.detGroup == nil {
		g := s.topic.Group(GroupDetectors)
		// Skip history (typically the training range, already stored
		// and not worth flagging); the group sees live traffic only.
		g.SeekToEnd()
		s.detGroup = bus.LocalGroup{Group: g}
	}
	return s.detGroup
}

// StartDetectors starts a pool of detector workers
// (Config.DetectorWorkers when workers <= 0) consuming the detector
// group — attached now at the end of the topic, or wherever a prior
// AttachDetectorGroup left it. Stop the pool before Close; stopping
// detaches the group, so records published while no pool runs are not
// replayed to a later one.
func (s *System) StartDetectors(workers int) *DetectorPool {
	if workers <= 0 {
		workers = s.cfg.DetectorWorkers
	}
	env := DetectorEnv{
		Sensors:      s.cfg.SensorsPerUnit,
		Primary:      s.cfg.PrimaryDetector,
		NewDetector:  s.newDetector,
		Sink:         &tsdb.Sink{TSD: s.TSDB.TSDs()[0]},
		Flags:        bus.LocalTopic{Topic: s.flags},
		Shadows:      s.cfg.ShadowDetectors,
		ShadowBuffer: s.cfg.ShadowBuffer,
		OnStop:       s.poolStopped,
	}
	// Attach (or reuse) the group and register the pool atomically, so
	// a concurrent Stop of the last running pool either sees this pool
	// as a sharer or has fully detached before the group is resolved.
	s.mu.Lock()
	defer s.mu.Unlock()
	p := NewDetectorPool(env, s.attachDetectorGroupLocked(), workers)
	s.pools = append(s.pools, p)
	return p
}

// poolStopped is the System side of DetectorPool.Stop: deregister the
// pool and — once no other pool shares its group — detach the group,
// so stopping one pool never kills a sibling started by a second
// StartDetectors call.
func (s *System) poolStopped(p *DetectorPool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	shared := false
	kept := s.pools[:0]
	for _, other := range s.pools {
		if other == p {
			continue
		}
		kept = append(kept, other)
		if other.group == p.group {
			shared = true
		}
	}
	s.pools = kept
	if !shared {
		if s.detGroup == p.group {
			s.detGroup = nil
		}
		// Detach inside the critical section: a concurrent
		// StartDetectors must observe either the attached group (and
		// register as a sharer) or a fully detached topic, never join
		// a group about to close.
		p.group.Close()
	}
}

// Group exposes the pool's consumer group (lag, committed offsets).
func (p *DetectorPool) Group() bus.GroupHandle { return p.group }

// Sync blocks until the pool has committed every record published so
// far (benchmarks and the live loop use it as a barrier). It does not
// wait for the asynchronous shadow runner — see DrainShadows.
func (p *DetectorPool) Sync(ctx context.Context) error { return p.group.Sync(ctx) }

// DrainShadows blocks until every batch offered to the shadow runner
// has been evaluated and counted (or ctx is done). A no-op without
// shadows. Call after Sync for a full barrier.
func (p *DetectorPool) DrainShadows(ctx context.Context) error {
	if p.shadow == nil {
		return nil
	}
	return p.shadow.drain(ctx)
}

// ShadowStats returns each shadow family's comparison counters, keyed
// by family name. Empty without shadows.
func (p *DetectorPool) ShadowStats() map[string]ShadowStats {
	if p.shadow == nil {
		return nil
	}
	out := make(map[string]ShadowStats, len(p.shadow.names))
	for i, name := range p.shadow.names {
		out[name] = p.shadow.snapshot(i)
	}
	return out
}

// Stop halts the workers, waits for them to finish their in-flight
// records, stops the shadow runner, and — once no other pool shares it
// — detaches the consumer group, so stopping one pool never kills a
// sibling started by a second StartDetectors call. Idempotent.
func (p *DetectorPool) Stop() {
	p.once.Do(func() {
		// Mark stopped under wmu first: a concurrent Resize either
		// finishes its wg.Add before we observe the lock, or sees
		// stopped and no-ops — never an Add racing wg.Wait.
		p.wmu.Lock()
		p.stopped = true
		p.cancel()
		p.wmu.Unlock()
		p.wg.Wait()
		p.wmu.Lock()
		p.workers = nil
		p.wmu.Unlock()
		if p.shadow != nil {
			// After wg.Wait no worker can offer again, so the queue can
			// close safely.
			p.shadow.stop()
		}
		if p.env.OnStop != nil {
			p.env.OnStop(p)
			return
		}
		p.group.Close()
	})
}

// detectorScratch is one worker's private working set: the poll
// buffer, the row-assembly buffers, the detector instances of the
// units this worker currently owns, and the detection result buffer.
// All of it is retained across records, so a warmed worker evaluates
// without heap allocations.
type detectorScratch struct {
	dets     map[int]mllib.Detector
	det      mllib.Detections
	rows     [][]float64
	backing  []float64
	ts       []int64
	seen     []bool
	rowFlags []bool
}

// detector returns (lazily constructing) this worker's instance of the
// primary family for unit.
func (p *DetectorPool) detector(sc *detectorScratch, unit int) (mllib.Detector, error) {
	if d, ok := sc.dets[unit]; ok {
		return d, nil
	}
	d, err := p.env.NewDetector(p.env.Primary, unit)
	if err != nil {
		return nil, err
	}
	sc.dets[unit] = d
	return d, nil
}

// worker is one consumer-group member's loop: poll, evaluate, write
// flags, commit. Commit happens only after the whole poll is
// processed, so a worker lost mid-batch redelivers (at-least-once) to
// the surviving members.
func (p *DetectorPool) worker(ctx context.Context, c bus.ConsumerHandle) {
	defer p.wg.Done()
	defer c.Leave()
	sc := detectorScratch{dets: make(map[int]mllib.Detector)}
	sink := p.env.Sink
	buf := make([]bus.Record, 0, 16)
	boff := resilience.Backoff{Base: 5 * time.Millisecond, Factor: 2, Max: 500 * time.Millisecond, Jitter: true}
	pollFails := 0
	for {
		recs, err := c.Poll(ctx, buf)
		if err != nil {
			// A transient fetch fault (injected, deadline) parks the
			// worker briefly instead of killing it; only shutdown
			// signals (ctx done, bus closed) end the loop.
			if transientStorage(err) && ctx.Err() == nil {
				if resilience.Sleep(ctx, boff.Delay(pollFails)) != nil {
					return
				}
				pollFails++
				continue
			}
			return
		}
		pollFails = 0
		for i := range recs {
			if err := p.process(ctx, &recs[i], sink, &sc); err != nil {
				p.Errors.Inc()
			}
			p.Batches.Inc()
		}
		_ = c.CommitPolled(recs)
	}
}

// writeFlag writes one anomaly, parking on transient storage faults:
// jittered-backoff retries until the write lands, the fault turns out
// to be permanent, or the worker is stopped. The enclosing record is
// not committed while parked, so detection resumes exactly where the
// outage interrupted it (point writes are idempotent, so a replay of
// already-landed flags is harmless).
func (p *DetectorPool) writeFlag(ctx context.Context, sink core.AnomalySink, a core.Anomaly) error {
	boff := resilience.Backoff{Base: 5 * time.Millisecond, Factor: 2, Max: 500 * time.Millisecond, Jitter: true}
	parked := false
	defer func() {
		if parked {
			p.Parked.Dec()
		}
	}()
	for attempt := 0; ; attempt++ {
		err := sink.WriteAnomaly(a)
		if err == nil {
			return nil
		}
		if !transientStorage(err) || ctx.Err() != nil {
			return err
		}
		if !parked {
			parked = true
			p.Parks.Inc()
			p.Parked.Inc()
		}
		if resilience.Sleep(ctx, boff.Delay(attempt)) != nil {
			return ctx.Err()
		}
	}
}

// process scores one unit batch through the primary detector, writes
// its flags back, and hands a copy to the shadow runner.
func (p *DetectorPool) process(ctx context.Context, rec *bus.Record, sink core.AnomalySink, sc *detectorScratch) error {
	batch, ok := rec.Value.(*ingest.UnitBatch)
	if !ok {
		return fmt.Errorf("sentinel: record %d/%d is not a unit batch", rec.Partition, rec.Offset)
	}
	sensors := p.env.Sensors
	if err := sc.assemble(batch, sensors); err != nil {
		return err
	}
	d, err := p.detector(sc, batch.Unit)
	if err != nil {
		return err
	}
	n := len(batch.Points) / sensors
	if err := d.DetectBatchInto(sc.rows[:n], sc.ts[:n], &sc.det); err != nil {
		return err
	}
	p.SamplesEvaluated.Add(int64(n * sensors))
	if cap(sc.rowFlags) < n {
		sc.rowFlags = make([]bool, n)
	}
	sc.rowFlags = sc.rowFlags[:n]
	clear(sc.rowFlags)
	primary := p.env.Primary
	for _, f := range sc.det.Flags {
		sc.rowFlags[f.Row] = true
		a := core.Anomaly{
			Unit:      batch.Unit,
			Sensor:    f.Sensor,
			Timestamp: sc.ts[f.Row],
			Z:         f.Score,
			PValue:    f.PValue,
			Adjusted:  f.Adjusted,
			Detector:  primary,
			Score:     f.Score,
		}
		if f.Sensor >= 0 {
			a.Value = sc.rows[f.Row][f.Sensor]
		}
		if err := p.writeFlag(ctx, sink, a); err != nil {
			return fmt.Errorf("sentinel: write anomaly: %w", err)
		}
		p.AnomaliesWritten.Inc()
		// Feed the live stream — only while a tail (consumer
		// group) is attached: a group-less topic is never trimmed,
		// so publishing into one would retain every flag forever.
		// The check races benignly with tail attach/detach (the
		// stream is live; a flag written during the race is simply
		// not streamed). Failures are counted, not fatal — the
		// flag is already durable in the TSDB.
		if p.env.Flags != nil && p.env.Flags.HasGroups() {
			if _, err := p.env.Flags.Publish(ctx, uint64(a.Unit), a); err != nil {
				p.FlagPublishErrors.Inc()
			} else {
				p.FlagsPublished.Inc()
			}
		}
	}
	if p.shadow != nil {
		p.shadow.offer(batch.Unit, sc.rows[:n], sc.ts[:n], sc.rowFlags)
	}
	return nil
}

// assemble unpacks a unit batch into observation rows and timestamps,
// reusing the scratch buffers. The driver lays points out row-major
// (all sensors of a step, then the next step); assemble validates that
// shape rather than trusting it.
func (sc *detectorScratch) assemble(batch *ingest.UnitBatch, sensors int) error {
	if err := batch.Validate(sensors); err != nil {
		return err
	}
	n := len(batch.Points) / sensors
	if cap(sc.backing) < n*sensors {
		sc.backing = make([]float64, n*sensors)
	}
	if cap(sc.rows) < n {
		sc.rows = make([][]float64, n)
	}
	if cap(sc.ts) < n {
		sc.ts = make([]int64, n)
	}
	if cap(sc.seen) < sensors {
		sc.seen = make([]bool, sensors)
	}
	sc.backing = sc.backing[:n*sensors]
	sc.rows = sc.rows[:n]
	sc.ts = sc.ts[:n]
	sc.seen = sc.seen[:sensors]
	for r := 0; r < n; r++ {
		row := sc.backing[r*sensors : (r+1)*sensors]
		sc.rows[r] = row
		clear(sc.seen)
		t0 := batch.Points[r*sensors].Timestamp
		sc.ts[r] = t0
		for j := 0; j < sensors; j++ {
			pt := &batch.Points[r*sensors+j]
			if pt.Timestamp != t0 {
				return fmt.Errorf("sentinel: unit %d batch row %d mixes timestamps %d and %d", batch.Unit, r, t0, pt.Timestamp)
			}
			sidx, err := strconv.Atoi(pt.Tags["sensor"])
			if err != nil || sidx < 0 || sidx >= sensors {
				return fmt.Errorf("sentinel: unit %d batch has bad sensor tag %q", batch.Unit, pt.Tags["sensor"])
			}
			if sc.seen[sidx] {
				return fmt.Errorf("sentinel: unit %d batch row %d has sensor %d twice", batch.Unit, r, sidx)
			}
			sc.seen[sidx] = true
			row[sidx] = pt.Value
		}
	}
	return nil
}
