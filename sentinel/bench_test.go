package sentinel

import (
	"context"
	"fmt"
	"testing"
)

// BenchmarkDetectFanout isolates the online detection phase of E9 —
// storage read, evaluation, flag write-back for every unit — with the
// per-unit fan-out over the dataflow engine toggled off and on. The
// end-to-end pipeline benchmark is ingest-bound by the emulated
// per-node service ceiling, so this is where the evaluation sharding
// shows: serial evaluates units one after another, fanout one task per
// unit across the executor pool.
func BenchmarkDetectFanout(b *testing.B) {
	const (
		units   = 16
		sensors = 100
		window  = 16
	)
	for _, fanout := range []bool{false, true} {
		b.Run(fmt.Sprintf("fanout=%v", fanout), func(b *testing.B) {
			sys, err := New(Config{
				StorageNodes:   4,
				Units:          units,
				SensorsPerUnit: sensors,
				FaultFraction:  0.25,
				FaultOnset:     64,
				ShiftSigma:     5,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer sys.Close()
			if _, err := sys.IngestRange(0, 64+window); err != nil {
				b.Fatal(err)
			}
			if err := sys.TrainFromTSDB(0, 64, true); err != nil {
				b.Fatal(err)
			}
			if !fanout {
				sys.pipeline.Engine = nil
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sys.Detect(64, window); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(units*sensors*window)*float64(b.N)/b.Elapsed().Seconds(), "samples/s")
		})
	}
}

// BenchmarkDetectorPoolFanout measures the streaming detector tier in
// isolation: a window of unit batches is staged on the commit log
// under a stopped timer, then a pool of N consumer-group workers
// drains and evaluates it. Only the consume-evaluate phase is timed,
// so the reported samples/s is the detector tier's own throughput and
// should scale with the worker count on multi-core (each worker owns a
// partition subset and evaluates through its private zero-allocation
// arena).
func BenchmarkDetectorPoolFanout(b *testing.B) {
	const (
		units   = 16
		sensors = 100
		window  = 32
	)
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			sys, err := New(Config{
				StorageNodes:   4,
				Units:          units,
				SensorsPerUnit: sensors,
				Partitions:     units,
				BusBuffer:      -1, // stage whole windows without backpressure
			})
			if err != nil {
				b.Fatal(err)
			}
			defer sys.Close()
			if _, err := sys.IngestRange(0, 64); err != nil {
				b.Fatal(err)
			}
			if err := sys.TrainFromTSDB(0, 64, true); err != nil {
				b.Fatal(err)
			}
			ctx := context.Background()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				// Stage the next window: the detector group accumulates
				// it as backlog while the storage tier drains it.
				sys.AttachDetectorGroup()
				if _, err := sys.IngestRange(64+int64(i)*window, window); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				pool := sys.StartDetectors(workers)
				if err := pool.Sync(ctx); err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				if got := pool.SamplesEvaluated.Value(); got != units*sensors*window {
					b.Fatalf("pool evaluated %d samples, want %d", got, units*sensors*window)
				}
				pool.Stop()
				b.StartTimer()
			}
			b.ReportMetric(float64(units*sensors*window)*float64(b.N)/b.Elapsed().Seconds(), "samples/s")
		})
	}
}
