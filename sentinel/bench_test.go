package sentinel

import (
	"fmt"
	"testing"
)

// BenchmarkDetectFanout isolates the online detection phase of E9 —
// storage read, evaluation, flag write-back for every unit — with the
// per-unit fan-out over the dataflow engine toggled off and on. The
// end-to-end pipeline benchmark is ingest-bound by the emulated
// per-node service ceiling, so this is where the evaluation sharding
// shows: serial evaluates units one after another, fanout one task per
// unit across the executor pool.
func BenchmarkDetectFanout(b *testing.B) {
	const (
		units   = 16
		sensors = 100
		window  = 16
	)
	for _, fanout := range []bool{false, true} {
		b.Run(fmt.Sprintf("fanout=%v", fanout), func(b *testing.B) {
			sys, err := New(Config{
				StorageNodes:   4,
				Units:          units,
				SensorsPerUnit: sensors,
				FaultFraction:  0.25,
				FaultOnset:     64,
				ShiftSigma:     5,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer sys.Close()
			if _, err := sys.IngestRange(0, 64+window); err != nil {
				b.Fatal(err)
			}
			if err := sys.TrainFromTSDB(0, 64, true); err != nil {
				b.Fatal(err)
			}
			if !fanout {
				sys.pipeline.Engine = nil
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sys.Detect(64, window); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(units*sensors*window)*float64(b.N)/b.Elapsed().Seconds(), "samples/s")
		})
	}
}
