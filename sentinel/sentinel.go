// Package sentinel is the public face of the reproduction: an
// integrated system for scalable anomaly detection and visualization
// in power-generating assets (Jain et al., 2017).
//
// A System wires together every layer of Figure 1:
//
//   - a simulated fleet of power-generating assets (§II-A's synthetic
//     dataset: units × sensors at 1 Hz with injected faults),
//   - the storage tier — an HBase-like cluster under an OpenTSDB-like
//     TSD tier, fronted by the buffering reverse proxy (§III),
//   - the FDR anomaly detector — offline training on the dataflow
//     engine, online evaluation writing flags back to storage (§IV),
//   - and the web visualization (§V).
//
// Minimal use:
//
//	sys, _ := sentinel.New(sentinel.Config{StorageNodes: 5, Units: 10, SensorsPerUnit: 50})
//	defer sys.Close()
//	sys.IngestRange(0, 120)                  // stream two minutes of data
//	sys.TrainFromTSDB(0, 100, true)          // fit per-unit models
//	reports, _ := sys.Detect(100, 20)        // flag anomalies, write back
//	http.ListenAndServe(":8080", sys.Viz(120)) // serve the control center
package sentinel

import (
	"fmt"
	"net/http"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/dataflow"
	"repro/internal/fdr"
	"repro/internal/hbase"
	"repro/internal/hdfs"
	"repro/internal/ingest"
	"repro/internal/proxy"
	"repro/internal/simdata"
	"repro/internal/tsdb"
	"repro/internal/viz"
)

// Config sizes a System. Zero values take the documented defaults.
type Config struct {
	// StorageNodes is the number of HBase region servers; one TSD
	// daemon runs per node, as in the paper's deployment (default 3).
	StorageNodes int
	// SaltBuckets is the row-key salting width; defaults to
	// StorageNodes (one pre-split region per node). Set to -1 to
	// disable salting (the §III-B hotspot baseline).
	SaltBuckets int

	// Units and SensorsPerUnit shape the simulated fleet (defaults
	// 10 × 50; the paper's full dataset is 100 × 1000).
	Units          int
	SensorsPerUnit int
	// Seed drives every synthetic draw (default 42).
	Seed uint64
	// FaultFraction and FaultOnset control fault injection (defaults
	// 0.3 and 600; see simdata.Config).
	FaultFraction float64
	FaultOnset    int64
	// FaultSensors, DriftPerStep and ShiftSigma shape the injected
	// faults (zero values take simdata's defaults).
	FaultSensors int
	DriftPerStep float64
	ShiftSigma   float64

	// Level is the FDR target for flagging (default 0.05); Procedure
	// the correction (default Benjamini–Hochberg).
	Level     float64
	Procedure fdr.Procedure

	// EngineWorkers sizes the dataflow engine (default GOMAXPROCS).
	EngineWorkers int
	// EnergyFraction and MaxComponents tune the trained subspace.
	EnergyFraction float64
	MaxComponents  int

	// PerNodeRate, when > 0, emulates the per-node service ceiling in
	// samples/second (the Figure-2 hardware calibration).
	PerNodeRate float64
	// RSQueueCap / CrashOnOverflow pass through to the region servers
	// for the backpressure experiments.
	RSQueueCap      int
	CrashOnOverflow int64

	// ProxyMaxInFlight / ProxyBuffer tune the ingestion proxy.
	ProxyMaxInFlight int
	ProxyBuffer      int
}

func (c Config) withDefaults() Config {
	if c.StorageNodes <= 0 {
		c.StorageNodes = 3
	}
	if c.SaltBuckets == 0 {
		c.SaltBuckets = c.StorageNodes
	}
	if c.SaltBuckets < 0 {
		c.SaltBuckets = 0
	}
	if c.Units <= 0 {
		c.Units = 10
	}
	if c.SensorsPerUnit <= 0 {
		c.SensorsPerUnit = 50
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	if c.Level <= 0 || c.Level >= 1 {
		c.Level = 0.05
	}
	if c.Procedure == fdr.Uncorrected {
		c.Procedure = fdr.BH
	}
	return c
}

// System is a running deployment of the full architecture.
type System struct {
	cfg Config

	Fleet   *simdata.Fleet
	Cluster *hbase.Cluster
	TSDB    *tsdb.Deployment
	Proxy   *proxy.Proxy
	Engine  *dataflow.Engine
	Catalog *core.ModelCatalog
	Trainer *core.Trainer

	pipeline *core.Pipeline
	source   *tsdb.Source
}

// New boots a System: cluster, TSD tier, proxy, dataflow engine and an
// HDFS-backed model catalog.
func New(cfg Config) (*System, error) {
	cfg = cfg.withDefaults()
	fleet := simdata.NewFleet(simdata.Config{
		Units:          cfg.Units,
		SensorsPerUnit: cfg.SensorsPerUnit,
		Seed:           cfg.Seed,
		FaultFraction:  cfg.FaultFraction,
		FaultOnset:     cfg.FaultOnset,
		FaultSensors:   cfg.FaultSensors,
		DriftPerStep:   cfg.DriftPerStep,
		ShiftSigma:     cfg.ShiftSigma,
	})
	cluster, err := hbase.NewCluster(hbase.Config{
		RegionServers:    cfg.StorageNodes,
		RSQueueCap:       cfg.RSQueueCap,
		CrashOnOverflow:  cfg.CrashOnOverflow,
		ServiceRatePerRS: cfg.PerNodeRate,
		Clock:            clock.Real{},
	})
	if err != nil {
		return nil, fmt.Errorf("sentinel: boot cluster: %w", err)
	}
	deployment, err := tsdb.NewDeployment(cluster, cfg.StorageNodes, tsdb.TSDConfig{
		SaltBuckets: cfg.SaltBuckets,
	})
	if err != nil {
		cluster.Stop()
		return nil, fmt.Errorf("sentinel: boot tsdb: %w", err)
	}
	if err := deployment.CreateTable(); err != nil {
		cluster.Stop()
		return nil, fmt.Errorf("sentinel: create table: %w", err)
	}
	px, err := proxy.New(cluster.Network(), deployment.Addrs(), proxy.Config{
		MaxInFlight:   cfg.ProxyMaxInFlight,
		BufferBatches: cfg.ProxyBuffer,
	})
	if err != nil {
		cluster.Stop()
		return nil, fmt.Errorf("sentinel: boot proxy: %w", err)
	}
	engine := dataflow.NewEngine(cfg.EngineWorkers)
	catalog := &core.ModelCatalog{Store: &hdfs.Store{C: cluster.DFS(), Prefix: "/detector/"}}
	trainer := core.NewTrainer(engine, core.TrainerConfig{
		EnergyFraction: cfg.EnergyFraction,
		MaxComponents:  cfg.MaxComponents,
	})
	sys := &System{
		cfg:     cfg,
		Fleet:   fleet,
		Cluster: cluster,
		TSDB:    deployment,
		Proxy:   px,
		Engine:  engine,
		Catalog: catalog,
		Trainer: trainer,
	}
	sys.source = &tsdb.Source{TSD: deployment.TSDs()[0], Sensors: cfg.SensorsPerUnit}
	sys.pipeline = core.NewPipeline(
		catalog,
		core.EvaluatorConfig{Procedure: cfg.Procedure, Level: cfg.Level},
		sys.source,
		&tsdb.Sink{TSD: deployment.TSDs()[0]},
	)
	// Online evaluation fans out across units on the same engine the
	// offline trainer uses, so Detect throughput scales with cores.
	sys.pipeline.Engine = engine
	return sys, nil
}

// Config returns the effective configuration.
func (s *System) Config() Config { return s.cfg }

// Close releases every component.
func (s *System) Close() {
	s.Proxy.Close()
	s.Engine.Close()
	s.Cluster.Stop()
}

// IngestRange streams fleet time steps [from, from+steps) through the
// proxy into storage and waits for delivery.
func (s *System) IngestRange(from int64, steps int) (ingest.Stats, error) {
	driver := ingest.NewDriver(s.Fleet, s.Proxy, ingest.DriverConfig{})
	stats, err := driver.Run(from, steps)
	if err != nil {
		return stats, err
	}
	s.Proxy.Flush()
	return stats, nil
}

// Units returns all unit ids.
func (s *System) Units() []int {
	units := make([]int, s.cfg.Units)
	for i := range units {
		units[i] = i
	}
	return units
}

// TrainFromTSDB fits per-unit models from data previously ingested
// into storage over [from, from+count), the paper's offline batch path
// (Spark reading the stored streams). Models are cached to HDFS.
func (s *System) TrainFromTSDB(from int64, count int, concurrent bool) error {
	src := &tsdb.Source{
		TSD:        s.TSDB.TSDs()[0],
		Sensors:    s.cfg.SensorsPerUnit,
		TrainFrom:  from,
		TrainCount: count,
	}
	_, err := s.Trainer.TrainFleet(s.Units(), src, s.Catalog, concurrent)
	return err
}

// TrainFromFleet fits models directly from the generator (bypassing
// storage), useful when the training range was not ingested.
func (s *System) TrainFromFleet(from int64, count int, concurrent bool) error {
	src := core.WindowFunc(func(unit int) ([][]float64, error) {
		return s.Fleet.UnitWindow(unit, from, count), nil
	})
	_, err := s.Trainer.TrainFleet(s.Units(), src, s.Catalog, concurrent)
	return err
}

// Detect evaluates every trained unit over [from, from+count) reading
// observations from storage, writes flags back to the "anomaly"
// metric, and returns the reports. Units are evaluated concurrently on
// the dataflow engine, one task per unit.
func (s *System) Detect(from int64, count int) (map[int][]*core.Report, error) {
	return s.pipeline.ProcessFleet(from, count)
}

// SamplesEvaluated reports the cumulative sensor samples scored by the
// online evaluator (the §IV-A throughput unit).
func (s *System) SamplesEvaluated() int64 {
	return s.pipeline.SamplesEvaluated.Value()
}

// Viz returns the web application handler; now is the fleet time the
// pages treat as "current".
func (s *System) Viz(now int64) http.Handler {
	backend := &viz.Backend{
		TSD:     s.TSDB.TSDs()[0],
		Units:   s.cfg.Units,
		Sensors: s.cfg.SensorsPerUnit,
	}
	return viz.NewServer(backend, func() int64 { return now })
}
