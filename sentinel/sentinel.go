// Package sentinel is the public face of the reproduction: an
// integrated system for scalable anomaly detection and visualization
// in power-generating assets (Jain et al., 2017).
//
// A System wires together every layer of Figure 1:
//
//   - a simulated fleet of power-generating assets (§II-A's synthetic
//     dataset: units × sensors at 1 Hz with injected faults),
//   - the storage tier — an HBase-like cluster under an OpenTSDB-like
//     TSD tier, fronted by the buffering reverse proxy (§III),
//   - the FDR anomaly detector — offline training on the dataflow
//     engine, online evaluation writing flags back to storage (§IV),
//   - and the web visualization (§V).
//
// Minimal use:
//
//	sys, _ := sentinel.New(sentinel.Config{StorageNodes: 5, Units: 10, SensorsPerUnit: 50})
//	defer sys.Close()
//	sys.IngestRange(0, 120)                  // stream two minutes of data
//	sys.TrainFromTSDB(0, 100, true)          // fit per-unit models
//	reports, _ := sys.Detect(100, 20)        // flag anomalies, write back
//	http.ListenAndServe(":8080", sys.Viz(120)) // serve the control center
package sentinel

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/admission"
	"repro/internal/api"
	v1 "repro/internal/api/v1"
	"repro/internal/bus"
	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/dataflow"
	"repro/internal/faultinject"
	"repro/internal/fdr"
	"repro/internal/hbase"
	"repro/internal/hdfs"
	"repro/internal/ingest"
	"repro/internal/mllib"
	"repro/internal/proxy"
	"repro/internal/query"
	"repro/internal/resilience"
	"repro/internal/simdata"
	"repro/internal/telemetry"
	"repro/internal/tsdb"
	"repro/internal/viz"
)

// Bus topic and consumer-group names used by the ingestion pipeline.
const (
	// TopicEnergy carries ingest.UnitBatch records keyed by unit id.
	TopicEnergy = "energy"
	// TopicAnomalies carries core.Anomaly records, published by
	// detector workers as they write flags — the feed behind the
	// gateway's SSE endpoint.
	TopicAnomalies = "anomalies"
	// GroupStorage is the consumer group writing raw samples through
	// the proxy into the TSD tier.
	GroupStorage = "storage"
	// GroupDetectors is the consumer group evaluating samples online.
	GroupDetectors = "detectors"
	// GroupStream prefixes the consumer groups anomaly tails drain
	// TopicAnomalies with. Each tail gets its own group
	// (NewAnomalyTail appends a sequence number): consumer groups
	// split partitions among members, so two tails sharing one group
	// would each see only part of the fleet's flags — and the first
	// Close would detach the group under the other.
	GroupStream = "stream"
)

// Config sizes a System. Zero values take the documented defaults.
type Config struct {
	// StorageNodes is the number of HBase region servers; one TSD
	// daemon runs per node, as in the paper's deployment (default 3).
	StorageNodes int
	// SaltBuckets is the row-key salting width; defaults to
	// StorageNodes (one pre-split region per node). Set to -1 to
	// disable salting (the §III-B hotspot baseline).
	SaltBuckets int

	// Units and SensorsPerUnit shape the simulated fleet (defaults
	// 10 × 50; the paper's full dataset is 100 × 1000).
	Units          int
	SensorsPerUnit int
	// Seed drives every synthetic draw (default 42).
	Seed uint64
	// FaultFraction and FaultOnset control fault injection (defaults
	// 0.3 and 600; see simdata.Config).
	FaultFraction float64
	FaultOnset    int64
	// FaultSensors, DriftPerStep and ShiftSigma shape the injected
	// faults (zero values take simdata's defaults).
	FaultSensors int
	DriftPerStep float64
	ShiftSigma   float64

	// Level is the FDR target for flagging (default 0.05); Procedure
	// the correction (default Benjamini–Hochberg).
	Level     float64
	Procedure fdr.Procedure

	// EngineWorkers sizes the dataflow engine (default GOMAXPROCS).
	EngineWorkers int
	// EnergyFraction and MaxComponents tune the trained subspace.
	EnergyFraction float64
	MaxComponents  int

	// PerNodeRate, when > 0, emulates the per-node service ceiling in
	// samples/second (the Figure-2 hardware calibration).
	PerNodeRate float64
	// RSQueueCap / CrashOnOverflow pass through to the region servers
	// for the backpressure experiments.
	RSQueueCap      int
	CrashOnOverflow int64

	// ProxyMaxInFlight / ProxyBuffer tune the ingestion proxy.
	ProxyMaxInFlight int
	ProxyBuffer      int
	// ProxyMaxRetries bounds delivery attempts per batch (0 takes the
	// proxy default of 8; negative retries without bound until
	// shutdown — the zero-loss setting the chaos soak runs with).
	ProxyMaxRetries int
	// Breaker tunes the per-TSD circuit breakers shared by the
	// ingestion proxy and the gateway's query engine (zero fields take
	// resilience defaults: trip after 5 consecutive failures, 1s
	// cooldown, 2 probe successes to close).
	Breaker resilience.BreakerConfig

	// Partitions is the commit-log partition count for the ingestion
	// topic (default max(4, StorageNodes)); units are keyed onto
	// partitions, so it caps useful detector-worker fan-out.
	Partitions int
	// StorageWriters sizes the consumer group draining the bus into
	// the proxy (default 4).
	StorageWriters int
	// DetectorWorkers sizes the streaming detection pool started by
	// StartDetectors when its argument is 0 (default 2).
	DetectorWorkers int
	// BusBuffer bounds each partition's uncommitted window in records
	// before Publish blocks (default 1024; negative disables).
	BusBuffer int

	// SealAfter is how many fleet-seconds behind the ingest frontier a
	// storage row must fall before a compaction pass seals it into the
	// compressed block tier (default one row span, 3600 — a row seals
	// as soon as its hour has closed).
	SealAfter int64
	// CompactEvery starts the background compactor — each pass seals
	// closed rows, spills resident blocks over budget to HDFS, and
	// enforces retention — at this cadence. Zero leaves maintenance
	// manual: call System.CompactNow.
	CompactEvery time.Duration
	// RawTTL drops sealed raw blocks older than this many fleet-seconds
	// behind the ingest frontier (rollups survive, so wide dashboards
	// still render); RollupTTL is the final expiry of rollups too. Zero
	// keeps data forever.
	RawTTL    int64
	RollupTTL int64
	// HotBlockBytes bounds resident compressed payload before sealed
	// blocks spill to the HDFS tier (default 64 MiB; negative spills
	// every sealed block).
	HotBlockBytes int64

	// PrimaryDetector is the registered family the detector pool
	// evaluates and emits flags from (default "mgd", the trained
	// MGD+FDR evaluator — the behavior predating the detector tier).
	PrimaryDetector string
	// ShadowDetectors run asynchronously beside the primary on the
	// same batches, counting row-level agreements and disagreements
	// without emitting flags. A slow shadow never backpressures the
	// primary path: batches it cannot keep up with are shed (counted).
	ShadowDetectors []string
	// ShadowBuffer bounds the queue of batches waiting for the shadow
	// runner before shedding begins (default 64).
	ShadowBuffer int
	// EnsembleMembers and EnsembleMinVotes configure the "ensemble"
	// family when it is selected as primary or shadow (defaults: the
	// registry's — cusum+zscore+iforest at 2 votes).
	EnsembleMembers  []string
	EnsembleMinVotes int
}

func (c Config) withDefaults() Config {
	if c.StorageNodes <= 0 {
		c.StorageNodes = 3
	}
	if c.SaltBuckets == 0 {
		c.SaltBuckets = c.StorageNodes
	}
	if c.SaltBuckets < 0 {
		c.SaltBuckets = 0
	}
	if c.Units <= 0 {
		c.Units = 10
	}
	if c.SensorsPerUnit <= 0 {
		c.SensorsPerUnit = 50
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	if c.Level <= 0 || c.Level >= 1 {
		c.Level = 0.05
	}
	if c.Procedure == fdr.Uncorrected {
		c.Procedure = fdr.BH
	}
	if c.Partitions <= 0 {
		c.Partitions = c.StorageNodes
		if c.Partitions < 4 {
			c.Partitions = 4
		}
	}
	if c.StorageWriters <= 0 {
		c.StorageWriters = 4
	}
	if c.DetectorWorkers <= 0 {
		c.DetectorWorkers = 2
	}
	if c.PrimaryDetector == "" {
		c.PrimaryDetector = "mgd"
	}
	if c.ShadowBuffer <= 0 {
		c.ShadowBuffer = 64
	}
	return c
}

// System is a running deployment of the full architecture.
type System struct {
	cfg Config

	Fleet   *simdata.Fleet
	Cluster *hbase.Cluster
	TSDB    *tsdb.Deployment
	Proxy   *proxy.Proxy
	Engine  *dataflow.Engine
	Catalog *core.ModelCatalog
	Trainer *core.Trainer

	// Blocks is the deployment-shared compressed sealed tier; closed
	// storage rows compact into it and spill to HDFS under retention
	// (see internal/tsdb). Compactor drives its maintenance passes —
	// running in the background when Config.CompactEvery > 0, and
	// manually through CompactNow always.
	Blocks    *tsdb.BlockStore
	Compactor *tsdb.Compactor

	// Breakers holds the per-TSD circuit breakers shared by the
	// ingestion proxy and the gateway's query tier: one health view
	// per backend, fed by both read and write outcomes.
	Breakers *resilience.Group

	// Bus is the partitioned commit log decoupling producers from the
	// storage and detection tiers; Writers drains it into the proxy.
	Bus     *bus.Broker
	Writers *ingest.StorageWriters

	topic    *bus.Topic
	flags    *bus.Topic
	storage  *bus.Group
	pipeline *core.Pipeline
	source   *tsdb.Source

	mu       sync.Mutex
	pools    []*DetectorPool
	detGroup bus.GroupHandle

	streamSeq atomic.Int64
}

// New boots a System: cluster, TSD tier, proxy, dataflow engine and an
// HDFS-backed model catalog.
func New(cfg Config) (*System, error) {
	cfg = cfg.withDefaults()
	fleet := simdata.NewFleet(simdata.Config{
		Units:          cfg.Units,
		SensorsPerUnit: cfg.SensorsPerUnit,
		Seed:           cfg.Seed,
		FaultFraction:  cfg.FaultFraction,
		FaultOnset:     cfg.FaultOnset,
		FaultSensors:   cfg.FaultSensors,
		DriftPerStep:   cfg.DriftPerStep,
		ShiftSigma:     cfg.ShiftSigma,
	})
	cluster, err := hbase.NewCluster(hbase.Config{
		RegionServers:    cfg.StorageNodes,
		RSQueueCap:       cfg.RSQueueCap,
		CrashOnOverflow:  cfg.CrashOnOverflow,
		ServiceRatePerRS: cfg.PerNodeRate,
		Clock:            clock.Real{},
	})
	if err != nil {
		return nil, fmt.Errorf("sentinel: boot cluster: %w", err)
	}
	deployment, err := tsdb.NewDeployment(cluster, cfg.StorageNodes, tsdb.TSDConfig{
		SaltBuckets: cfg.SaltBuckets,
	})
	if err != nil {
		cluster.Stop()
		return nil, fmt.Errorf("sentinel: boot tsdb: %w", err)
	}
	if err := deployment.CreateTable(); err != nil {
		cluster.Stop()
		return nil, fmt.Errorf("sentinel: create table: %w", err)
	}
	breakers := resilience.NewGroup(cfg.Breaker)
	px, err := proxy.New(cluster.Network(), deployment.Addrs(), proxy.Config{
		MaxInFlight:   cfg.ProxyMaxInFlight,
		BufferBatches: cfg.ProxyBuffer,
		MaxRetries:    cfg.ProxyMaxRetries,
		Breakers:      breakers,
	})
	if err != nil {
		cluster.Stop()
		return nil, fmt.Errorf("sentinel: boot proxy: %w", err)
	}
	engine := dataflow.NewEngine(cfg.EngineWorkers)
	catalog := &core.ModelCatalog{Store: &hdfs.Store{C: cluster.DFS(), Prefix: "/detector/"}}
	trainer := core.NewTrainer(engine, core.TrainerConfig{
		EnergyFraction: cfg.EnergyFraction,
		MaxComponents:  cfg.MaxComponents,
	})
	sys := &System{
		cfg:      cfg,
		Fleet:    fleet,
		Cluster:  cluster,
		TSDB:     deployment,
		Proxy:    px,
		Engine:   engine,
		Catalog:  catalog,
		Trainer:  trainer,
		Breakers: breakers,
	}
	// The compressed sealed tier: closed rows compact into Gorilla
	// blocks with hot rollups, spilling to the HDFS tier under the
	// configured retention. The compactor loop only runs when a cadence
	// is configured; the tier itself is always attached so manual
	// CompactNow passes (and operator tooling) work out of the box.
	sys.Compactor = tsdb.NewCompactor(deployment,
		tsdb.BlockStoreConfig{HotBlockBytes: cfg.HotBlockBytes},
		tsdb.CompactorConfig{
			Interval:  cfg.CompactEvery,
			SealAfter: cfg.SealAfter,
			Retention: tsdb.RetentionPolicy{RawTTL: cfg.RawTTL, RollupTTL: cfg.RollupTTL},
		})
	sys.Blocks = sys.Compactor.Store()
	if cfg.CompactEvery > 0 {
		sys.Compactor.Start()
	}
	sys.source = &tsdb.Source{TSD: deployment.TSDs()[0], Sensors: cfg.SensorsPerUnit}
	sys.pipeline = core.NewPipeline(
		catalog,
		core.EvaluatorConfig{Procedure: cfg.Procedure, Level: cfg.Level},
		sys.source,
		&tsdb.Sink{TSD: deployment.TSDs()[0]},
	)
	// Online evaluation fans out across units on the same engine the
	// offline trainer uses, so Detect throughput scales with cores.
	sys.pipeline.Engine = engine
	// The ingestion bus: producers publish unit-keyed batches to the
	// partitioned log; the storage consumer group drains them through
	// the proxy into the TSD tier. Detection consumers attach
	// independently (StartDetectors), so a slow detector never stalls
	// storage writes — the paper's reason for the Kafka tier.
	sys.Bus = bus.New(bus.Config{Partitions: cfg.Partitions, PartitionBuffer: cfg.BusBuffer})
	sys.topic = sys.Bus.Topic(TopicEnergy)
	// The flag feed: detector workers publish every anomaly they write
	// so the gateway's SSE endpoint can tail detection live. Workers
	// publish only while a tail's consumer group is attached — a
	// group-less topic is never trimmed, so feeding it with nobody
	// consuming would retain flags forever.
	sys.flags = sys.Bus.Topic(TopicAnomalies)
	sys.storage = sys.topic.Group(GroupStorage)
	sys.Writers = ingest.StartStorageWriters(context.Background(), bus.LocalGroup{Group: sys.storage}, px, cfg.StorageWriters)
	return sys, nil
}

// Config returns the effective configuration.
func (s *System) Config() Config { return s.cfg }

// SetFaults installs (or, with nil, removes) one fault injector across
// every injection point of the system: the RPC fabric (operations
// "rpc/<addr>/<method>"), the commit log ("bus/publish/<topic>",
// "bus/fetch/<topic>"), the TSD tier below the fabric
// ("tsdb/put/<name>", "tsdb/query/<name>" — covering in-process
// writers too), and the proxy's submission edge ("proxy/submit").
// Runtime-toggleable: rules added or cleared on the injector take
// effect on the next operation.
func (s *System) SetFaults(f *faultinject.Injector) {
	s.Cluster.Network().SetFaults(f)
	s.Bus.SetFaults(f)
	s.TSDB.SetFaults(f)
	s.Proxy.SetFaults(f)
}

// Close releases every component: the compactor and detector pools
// first (both touch storage), then the storage writers and the bus,
// then the storage tier under them.
func (s *System) Close() {
	s.Compactor.Stop()
	s.mu.Lock()
	pools := s.pools
	s.pools = nil
	s.mu.Unlock()
	for _, p := range pools {
		p.Stop()
	}
	s.Writers.Stop()
	s.Bus.Close()
	s.Proxy.Close()
	s.Engine.Close()
	s.Cluster.Stop()
}

// Topic returns the ingestion commit-log topic (for replay tooling and
// custom consumers).
func (s *System) Topic() *bus.Topic { return s.topic }

// AnomalyTopic returns the flag-feed topic detector workers publish
// onto (the SSE tail's source).
func (s *System) AnomalyTopic() *bus.Topic { return s.flags }

// NewAnomalyTail attaches a live tail to the flag feed under its own
// consumer group, so every tail sees every flag and closing one never
// detaches another's. Close the tail before System.Close.
func (s *System) NewAnomalyTail() *api.AnomalyTail {
	return api.NewAnomalyTail(bus.LocalTopic{Topic: s.flags}, fmt.Sprintf("%s-%d", GroupStream, s.streamSeq.Add(1)))
}

// IngestRange streams fleet time steps [from, from+steps) onto the
// commit log and waits until the storage consumer group has drained
// them through the proxy into the TSD tier — the synchronous contract
// the training and detection paths rely on. Detector pools consume the
// same records asynchronously.
func (s *System) IngestRange(from int64, steps int) (ingest.Stats, error) {
	driver := ingest.NewBusDriver(s.Fleet, bus.LocalTopic{Topic: s.topic}, ingest.DriverConfig{})
	stats, err := driver.Run(from, steps)
	if err != nil {
		return stats, err
	}
	if err := s.storage.Sync(context.Background()); err != nil {
		return stats, fmt.Errorf("sentinel: drain storage group: %w", err)
	}
	s.Proxy.Flush()
	return stats, nil
}

// CompactNow runs one storage-tier maintenance pass synchronously:
// rows whose hour has closed (per Config.SealAfter) seal into
// compressed blocks, blocks over the resident budget spill to HDFS,
// and retention TTLs are enforced. Safe alongside the background
// compactor; useful in tests and batch tooling that want the tier
// advanced deterministically.
func (s *System) CompactNow(ctx context.Context) error {
	return s.Compactor.RunOnce(ctx)
}

// Units returns all unit ids.
func (s *System) Units() []int {
	units := make([]int, s.cfg.Units)
	for i := range units {
		units[i] = i
	}
	return units
}

// TrainFromTSDB fits per-unit models from data previously ingested
// into storage over [from, from+count), the paper's offline batch path
// (Spark reading the stored streams). Models are cached to HDFS.
func (s *System) TrainFromTSDB(from int64, count int, concurrent bool) error {
	src := &tsdb.Source{
		TSD:        s.TSDB.TSDs()[0],
		Sensors:    s.cfg.SensorsPerUnit,
		TrainFrom:  from,
		TrainCount: count,
	}
	_, err := s.Trainer.TrainFleet(s.Units(), src, s.Catalog, concurrent)
	return err
}

// TrainFromFleet fits models directly from the generator (bypassing
// storage), useful when the training range was not ingested.
func (s *System) TrainFromFleet(from int64, count int, concurrent bool) error {
	src := core.WindowFunc(func(unit int) ([][]float64, error) {
		return s.Fleet.UnitWindow(unit, from, count), nil
	})
	_, err := s.Trainer.TrainFleet(s.Units(), src, s.Catalog, concurrent)
	return err
}

// newDetector builds one unit's instance of the named registered
// family, wiring the system's model catalog, seed and ensemble
// configuration into the factory context.
func (s *System) newDetector(name string, unit int) (mllib.Detector, error) {
	return mllib.New(name, mllib.Context{
		Unit:    unit,
		Sensors: s.cfg.SensorsPerUnit,
		Seed:    s.cfg.Seed ^ uint64(unit)<<1,
		Members: s.cfg.EnsembleMembers,
		Params: map[string]float64{
			"level":     s.cfg.Level,
			"procedure": float64(s.cfg.Procedure),
			"minvotes":  float64(max(s.cfg.EnsembleMinVotes, 2)),
		},
		LoadModel: func() (any, error) { return s.Catalog.Load(unit) },
	})
}

// DetectorStatus reports every registered detector family with its
// role in this system (primary / shadow / off), its flag and
// shadow-comparison counters aggregated across running pools, and the
// effective ensemble configuration — the /api/v1/detectors payload.
func (s *System) DetectorStatus() v1.DetectorsResponse {
	shadowNames := make(map[string]bool, len(s.cfg.ShadowDetectors))
	for _, n := range s.cfg.ShadowDetectors {
		shadowNames[n] = true
	}
	var primaryFlags int64
	shadow := make(map[string]ShadowStats)
	s.mu.Lock()
	for _, p := range s.pools {
		primaryFlags += p.AnomaliesWritten.Value()
		for name, st := range p.ShadowStats() {
			agg := shadow[name]
			agg.Batches += st.Batches
			agg.Flags += st.Flags
			agg.Agreements += st.Agreements
			agg.Disagreements += st.Disagreements
			agg.Shed += st.Shed
			agg.Errors += st.Errors
			shadow[name] = agg
		}
	}
	s.mu.Unlock()
	resp := v1.DetectorsResponse{Primary: s.cfg.PrimaryDetector}
	members := s.cfg.EnsembleMembers
	if len(members) == 0 {
		members = []string{"cusum", "zscore", "iforest"}
	}
	resp.Ensemble = v1.EnsembleConfig{
		Members:  members,
		MinVotes: max(s.cfg.EnsembleMinVotes, 2),
	}
	for _, name := range mllib.Registered() {
		info := v1.DetectorInfo{Name: name, Mode: "off"}
		switch {
		case name == s.cfg.PrimaryDetector:
			info.Mode = "primary"
			info.Flags = primaryFlags
		case shadowNames[name]:
			info.Mode = "shadow"
			st := shadow[name]
			info.Flags = st.Flags
			info.Agreements = st.Agreements
			info.Disagreements = st.Disagreements
			info.Shed = st.Shed
		}
		resp.Detectors = append(resp.Detectors, info)
	}
	return resp
}

// Detect evaluates every trained unit over [from, from+count) reading
// observations from storage, writes flags back to the "anomaly"
// metric, and returns the reports. Units are evaluated concurrently on
// the dataflow engine, one task per unit.
func (s *System) Detect(from int64, count int) (map[int][]*core.Report, error) {
	return s.pipeline.ProcessFleet(from, count)
}

// SamplesEvaluated reports the cumulative sensor samples scored by the
// online evaluator (the §IV-A throughput unit).
func (s *System) SamplesEvaluated() int64 {
	return s.pipeline.SamplesEvaluated.Value()
}

// QueryEngine builds a scatter-gather read tier spanning every TSD of
// the deployment, wired to its write watermarks for cache
// invalidation.
func (s *System) QueryEngine(cfg query.Config) *query.Engine {
	return query.NewFromDeployment(s.TSDB, cfg)
}

// GatewayConfig tunes the handler Gateway assembles. Zero values take
// the api package defaults.
type GatewayConfig struct {
	// Now supplies "current" fleet time (nil: the fixed now passed to
	// Gateway).
	Now func() int64
	// MaxPoints bounds rendered series via LTTB (default 512).
	MaxPoints int
	// CacheEntries sizes the query tier's window cache (default 256).
	CacheEntries int
	// RatePerSec/Burst enable per-client rate limiting (0 disables).
	RatePerSec float64
	Burst      int
	// AccessLog overrides the gateway's access logger.
	AccessLog *log.Logger
	// HedgeDelay, when > 0, hedges straggler shard reads: a duplicate
	// sub-query goes to the next TSD once the primary has been silent
	// this long, first success wins.
	HedgeDelay time.Duration
	// NoServeStale disables degraded-mode reads. By default the query
	// tier answers from stale cache (marked via X-Sentinel-Degraded
	// and the DTO degraded field) when the storage tier cannot.
	NoServeStale bool
	// APIKeys lists client keys (X-API-Key) that earn their own
	// rate-limit bucket and admission quota identity.
	APIKeys []string
	// Admission, when set, gates every route on the adaptive overload
	// controller — see System.NewAdmissionController.
	Admission *admission.Controller
}

// Gateway returns the full web surface of the system as one handler:
// the /api/v1 tier (writes onto the ingestion bus, reads through a
// cached scatter-gather engine, the SSE anomaly stream, metrics and
// readiness), the legacy shim paths, and the Figure-3 HTML
// application. now is the fleet time pages treat as "current" when
// cfg.Now is nil. Close the returned tail before System.Close.
func (s *System) Gateway(now int64, cfg GatewayConfig) (http.Handler, *api.AnomalyTail) {
	if cfg.Now == nil {
		cfg.Now = func() int64 { return now }
	}
	if cfg.MaxPoints <= 0 {
		cfg.MaxPoints = 512
	}
	if cfg.CacheEntries == 0 {
		cfg.CacheEntries = 256
	}
	engine := s.QueryEngine(query.Config{
		MaxEntries: cfg.CacheEntries,
		Breakers:   s.Breakers,
		HedgeDelay: cfg.HedgeDelay,
		ServeStale: !cfg.NoServeStale,
	})
	backend := &viz.Backend{
		Q:         engine,
		Units:     s.cfg.Units,
		Sensors:   s.cfg.SensorsPerUnit,
		MaxPoints: cfg.MaxPoints,
	}
	tail := s.NewAnomalyTail()
	reg := telemetry.NewRegistry()
	s.RegisterMetrics(reg)
	// Query-tier resilience counters live on the per-gateway engine.
	reg.RegisterCounter("query_hedged", &engine.Hedged)
	reg.RegisterCounter("query_hedge_wins", &engine.HedgeWins)
	reg.RegisterCounter("query_degraded_serves", &engine.DegradedServes)
	gw := api.New(api.Config{
		Backend:    backend,
		Publisher:  &api.BusPublisher{Topic: bus.LocalTopic{Topic: s.topic}},
		Query:      engine,
		Tail:       tail,
		Registry:   reg,
		HTML:       viz.NewServer(backend, cfg.Now),
		Ready:      s.ReadyChecks(),
		Now:        cfg.Now,
		Detectors:  s.DetectorStatus,
		Cluster:    s.ClusterStatus,
		RatePerSec: cfg.RatePerSec,
		Burst:      cfg.Burst,
		AccessLog:  cfg.AccessLog,
		APIKeys:    cfg.APIKeys,
		Admission:  cfg.Admission,
	})
	return gw, tail
}

// Viz returns the web application handler; now is the fleet time the
// pages treat as "current".
//
// Deprecated: Viz serves the gateway without exposing its anomaly
// tail, which therefore lives until System.Close. Use Gateway for
// shutdown control.
func (s *System) Viz(now int64) http.Handler {
	h, _ := s.Gateway(now, GatewayConfig{})
	return h
}

// RegisterMetrics exposes the system's counters on reg under the
// names the /metrics endpoints serve.
func (s *System) RegisterMetrics(reg *telemetry.Registry) {
	reg.RegisterCounter("bus_published", &s.Bus.Published)
	reg.RegisterCounter("bus_polled", &s.Bus.Polled)
	reg.RegisterCounter("bus_rebalances", &s.Bus.Rebalances)
	reg.RegisterFunc("storage_lag", s.storage.Lag)
	reg.RegisterCounter("writer_delivered", &s.Writers.Delivered)
	reg.RegisterCounter("writer_failures", &s.Writers.Failures)
	reg.RegisterCounter("proxy_accepted", &s.Proxy.Accepted)
	reg.RegisterCounter("proxy_delivered", &s.Proxy.Delivered)
	reg.RegisterCounter("proxy_dropped", &s.Proxy.Dropped)
	reg.RegisterCounter("proxy_retries", &s.Proxy.Retries)
	reg.RegisterGauge("proxy_queue_depth", &s.Proxy.QueueDepth)
	reg.RegisterFunc("samples_evaluated", s.SamplesEvaluated)
	reg.RegisterFunc("tsdb_points_written", s.TSDB.PointsWritten)
	reg.RegisterFunc("tsdb_queries_served", s.TSDB.QueriesServed)
	reg.RegisterCounter("breaker_opens", &s.Breakers.Opens)
	reg.RegisterCounter("breaker_half_opens", &s.Breakers.HalfOpens)
	reg.RegisterCounter("breaker_closes", &s.Breakers.Closes)
	reg.RegisterFunc("breakers_open", func() int64 { return int64(s.Breakers.OpenCount()) })
	reg.RegisterCounter("blocks_sealed", &s.Blocks.BlocksSealed)
	reg.RegisterCounter("samples_sealed", &s.Blocks.SamplesSealed)
	reg.RegisterCounter("bytes_sealed", &s.Blocks.BytesSealed)
	reg.RegisterCounter("blocks_spilled", &s.Blocks.BlocksSpilled)
	reg.RegisterCounter("spill_reads", &s.Blocks.SpillReads)
	reg.RegisterCounter("block_scans", &s.Blocks.BlockScans)
	reg.RegisterCounter("rollup_serves", &s.Blocks.RollupServes)
	reg.RegisterCounter("blocks_expired", &s.Blocks.BlocksExpired)
	reg.RegisterCounter("rollups_expired", &s.Blocks.RollupsExpired)
	reg.RegisterFunc("blocks_hot_bytes", s.Blocks.HotBytes)
	reg.RegisterCounter("compactor_passes", &s.Compactor.Passes)
	reg.RegisterCounter("compactor_pass_errors", &s.Compactor.PassErrors)
	reg.RegisterCounter("writer_parks", &s.Writers.Parks)
	reg.RegisterGauge("writer_parked", &s.Writers.Parked)
	reg.RegisterFunc("detector_parks", func() int64 { return s.detectorStat(func(p *DetectorPool) int64 { return p.Parks.Value() }) })
	reg.RegisterFunc("detector_parked", func() int64 { return s.detectorStat(func(p *DetectorPool) int64 { return p.Parked.Value() }) })
}

// detectorStat sums one per-pool counter across the running pools.
func (s *System) detectorStat(get func(*DetectorPool) int64) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var n int64
	for _, p := range s.pools {
		n += get(p)
	}
	return n
}

// ReadyChecks probes the tiers a serving gateway depends on: the bus
// accepting publishes, the storage group draining it, and a detector
// pool attached (detection running). Liveness is weaker — see
// /healthz vs /readyz in internal/api.
func (s *System) ReadyChecks() []api.ReadyCheck {
	return []api.ReadyCheck{
		{Name: "bus", Check: func() error {
			if !s.Bus.Running() {
				return errors.New("bus not accepting publishes")
			}
			return nil
		}},
		{Name: "storage", Check: func() error {
			n := len(s.TSDB.Addrs())
			if n == 0 {
				return errors.New("no TSDs")
			}
			open := s.Breakers.OpenCount()
			if open >= n {
				return fmt.Errorf("all %d backend circuits open", open)
			}
			if open > 0 {
				// Some backends are tripped but the tier still
				// answers (failover, stale cache): degraded, not down.
				return api.Degraded(fmt.Errorf("%d of %d backend circuits open", open, n))
			}
			return nil
		}},
		{Name: "detectors", Check: func() error {
			s.mu.Lock()
			attached := s.detGroup != nil
			var parked int64
			for _, p := range s.pools {
				parked += p.Parked.Value()
			}
			s.mu.Unlock()
			if !attached {
				return errors.New("no detector pool attached")
			}
			if parked > 0 {
				// Parked workers are riding out a storage fault with
				// their records uncommitted — lagging, not lost.
				return api.Degraded(fmt.Errorf("%d detector workers parked on storage faults", parked))
			}
			return nil
		}},
	}
}
