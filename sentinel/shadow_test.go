package sentinel

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/fdr"
	"repro/internal/mllib"
)

// init registers a pathologically slow detector family for the
// isolation test: every batch takes longer than the whole test's
// ingest window, so without shedding it could never keep up.
func init() {
	mllib.Register("slowshadow", func(c mllib.Context) (mllib.Detector, error) {
		return &slowDetector{}, nil
	})
}

type slowDetector struct{}

func (d *slowDetector) Name() string { return "slowshadow" }

func (d *slowDetector) DetectBatchInto(xs [][]float64, ts []int64, out *mllib.Detections) error {
	out.Reset()
	time.Sleep(20 * time.Millisecond)
	return nil
}

// newShadowTestSystem builds a small trained system with the given
// shadow configuration and returns it with its started pool.
func newShadowTestSystem(t *testing.T, shadows []string, buffer int) (*System, *DetectorPool) {
	t.Helper()
	sys, err := New(Config{
		StorageNodes:    2,
		Units:           4,
		SensorsPerUnit:  12,
		Seed:            7,
		FaultFraction:   0.6,
		FaultOnset:      60,
		ShiftSigma:      8,
		Procedure:       fdr.BH,
		Partitions:      4,
		ShadowDetectors: shadows,
		ShadowBuffer:    buffer,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sys.Close)
	if _, err := sys.IngestRange(0, 60); err != nil {
		t.Fatal(err)
	}
	if err := sys.TrainFromTSDB(0, 60, true); err != nil {
		t.Fatal(err)
	}
	pool := sys.StartDetectors(2)
	t.Cleanup(pool.Stop)
	return sys, pool
}

// TestSlowShadowNeverBackpressuresPrimary proves the shadow-mode
// isolation contract under the race detector: a shadow detector that
// takes 20ms per batch, behind a one-slot queue, must not slow, stall
// or corrupt the primary path — the primary run produces exactly the
// flags a shadow-free run does, and the overflow is shed and counted.
func TestSlowShadowNeverBackpressuresPrimary(t *testing.T) {
	const steps = 20
	ctx := context.Background()

	// Baseline: same fleet, same seed, no shadows.
	base, basePool := newShadowTestSystem(t, nil, 0)
	if _, err := base.IngestRange(60, steps); err != nil {
		t.Fatal(err)
	}
	if err := basePool.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	wantFlags := basePool.AnomaliesWritten.Value()
	if wantFlags == 0 {
		t.Fatal("baseline run flagged nothing; the comparison is vacuous")
	}

	// Shadowed: the 20ms-per-batch family behind a single-slot queue.
	sys, pool := newShadowTestSystem(t, []string{"slowshadow"}, 1)
	start := time.Now()
	if _, err := sys.IngestRange(60, steps); err != nil {
		t.Fatal(err)
	}
	if err := pool.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)

	if got := pool.AnomaliesWritten.Value(); got != wantFlags {
		t.Fatalf("shadowed primary wrote %d flags, baseline wrote %d", got, wantFlags)
	}
	if pool.Errors.Value() != 0 {
		t.Fatalf("shadowed primary hit %d errors", pool.Errors.Value())
	}
	// 4 units × 20 steps = 80 batches at 20ms each ≈ 1.6s if the
	// primary ever waited on the shadow. The bound is generous so slow
	// CI machines don't flake, while still proving no serialization.
	if elapsed > 1200*time.Millisecond {
		t.Fatalf("primary path took %v with a slow shadow attached", elapsed)
	}

	// The runner could not keep up: overflow was shed, not queued.
	drainCtx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	if err := pool.DrainShadows(drainCtx); err != nil {
		t.Fatal(err)
	}
	st := pool.ShadowStats()["slowshadow"]
	if st.Shed == 0 {
		t.Fatalf("slow shadow shed nothing (stats %+v) — was it really behind a bounded queue?", st)
	}
	if st.Batches+st.Shed == 0 {
		t.Fatalf("shadow saw no batches at all: %+v", st)
	}
}

// TestShadowSelfAgreement runs the primary family in its own shadow:
// every flagged row must count as an agreement and none as a
// disagreement — the sanity anchor for the comparison counters.
func TestShadowSelfAgreement(t *testing.T) {
	const steps = 20
	ctx := context.Background()
	sys, pool := newShadowTestSystem(t, []string{"mgd"}, 0)
	if _, err := sys.IngestRange(60, steps); err != nil {
		t.Fatal(err)
	}
	if err := pool.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	drainCtx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	if err := pool.DrainShadows(drainCtx); err != nil {
		t.Fatal(err)
	}
	st := pool.ShadowStats()["mgd"]
	if st.Shed != 0 {
		// Shed batches would make the counters incomparable; the
		// default buffer must absorb this tiny run.
		t.Fatalf("self-shadow shed %d batches", st.Shed)
	}
	if st.Errors != 0 {
		t.Fatalf("self-shadow errored %d times", st.Errors)
	}
	if pool.AnomaliesWritten.Value() == 0 || st.Agreements == 0 {
		t.Fatalf("nothing compared: primary=%d stats=%+v", pool.AnomaliesWritten.Value(), st)
	}
	if st.Disagreements != 0 {
		t.Fatalf("the same family disagreed with itself: %+v", st)
	}

	// The status endpoint payload reflects the same counters.
	ds := sys.DetectorStatus()
	for _, d := range ds.Detectors {
		if d.Name == "mgd" {
			// mgd is primary AND shadow; primary mode wins the listing.
			if d.Mode != "primary" {
				t.Fatalf("mgd mode = %s", d.Mode)
			}
		}
	}
}

// errDetector always fails evaluation; badCtor families fail
// construction. Both exercise the shadow error path.
type errDetector struct{}

func (d *errDetector) Name() string { return "errshadow" }

func (d *errDetector) DetectBatchInto(xs [][]float64, ts []int64, out *mllib.Detections) error {
	out.Reset()
	return errors.New("errshadow: synthetic evaluation failure")
}

func init() {
	mllib.Register("errshadow", func(c mllib.Context) (mllib.Detector, error) {
		return &errDetector{}, nil
	})
	mllib.Register("badctor", func(c mllib.Context) (mllib.Detector, error) {
		return nil, errors.New("badctor: synthetic construction failure")
	})
}

// TestShadowEvalErrorsCountedNeverWedge: a shadow family that errors on
// every batch increments its error counter, evaluates nothing — and
// neither wedges the runner (a healthy sibling keeps evaluating) nor
// leaks pooled jobs (the queue drains to zero), nor touches the
// primary path.
func TestShadowEvalErrorsCountedNeverWedge(t *testing.T) {
	const steps = 20
	ctx := context.Background()
	sys, pool := newShadowTestSystem(t, []string{"errshadow", "mgd"}, 64)
	if _, err := sys.IngestRange(60, steps); err != nil {
		t.Fatal(err)
	}
	if err := pool.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	drainCtx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	if err := pool.DrainShadows(drainCtx); err != nil {
		t.Fatalf("shadow queue wedged behind an erroring family: %v", err)
	}

	bad := pool.ShadowStats()["errshadow"]
	if bad.Errors == 0 {
		t.Fatalf("erroring shadow counted no errors: %+v", bad)
	}
	if bad.Batches != 0 || bad.Flags != 0 || bad.Agreements != 0 || bad.Disagreements != 0 {
		t.Fatalf("erroring shadow evaluated anyway: %+v", bad)
	}
	healthy := pool.ShadowStats()["mgd"]
	if healthy.Batches == 0 {
		t.Fatalf("healthy sibling starved by the erroring family: %+v", healthy)
	}
	// Every offered job either errored or was shed before the runner saw
	// it; nothing vanished.
	if got := bad.Errors + bad.Shed; got != healthy.Batches+healthy.Shed {
		t.Fatalf("errored+shed = %d, healthy evaluated+shed = %d: jobs went missing", got, healthy.Batches+healthy.Shed)
	}
	// Every pooled job was returned: pending drained to zero.
	if n := pool.shadow.pending.Load(); n != 0 {
		t.Fatalf("%d jobs still pending after drain — pooled batches leaked", n)
	}
	if pool.Errors.Value() != 0 {
		t.Fatalf("shadow errors bled into the primary error counter: %d", pool.Errors.Value())
	}
	if pool.AnomaliesWritten.Value() == 0 {
		t.Fatal("primary path wrote nothing; the isolation claim is vacuous")
	}
}

// TestShadowConstructionErrorCounted: a family whose factory fails is
// counted per batch and retried harmlessly — never cached as a broken
// detector, never fatal to the runner.
func TestShadowConstructionErrorCounted(t *testing.T) {
	const steps = 10
	ctx := context.Background()
	sys, pool := newShadowTestSystem(t, []string{"badctor"}, 64)
	if _, err := sys.IngestRange(60, steps); err != nil {
		t.Fatal(err)
	}
	if err := pool.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	drainCtx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	if err := pool.DrainShadows(drainCtx); err != nil {
		t.Fatalf("shadow queue wedged behind a failing constructor: %v", err)
	}
	st := pool.ShadowStats()["badctor"]
	if st.Errors == 0 {
		t.Fatalf("failing constructor counted no errors: %+v", st)
	}
	if st.Batches != 0 {
		t.Fatalf("unconstructable shadow evaluated batches: %+v", st)
	}
	if n := pool.shadow.pending.Load(); n != 0 {
		t.Fatalf("%d jobs still pending after drain", n)
	}
}
