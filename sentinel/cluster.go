// Cluster node runtime: the multi-process deployment of the system.
//
// A single-process System wires every tier through shared memory. A
// Node instead runs a subset of roles and reaches the rest of the
// cluster over the rpc fabric's TCP transport:
//
//   - broker  — a bus replica: partition-log storage, candidate in the
//     partition-group elections, coordinator for remote consumers
//     while it leads.
//   - store   — an HBase cluster + TSD tier + ingestion proxy, plus a
//     bus replica (so publishes stay acked-durable when the broker
//     dies and a store follower is promoted). Its storage writers
//     consume the shared "energy" topic through the remote bus.
//   - detect  — a DetectorPool consuming "energy" remotely, writing
//     flags to the store tier over rpc and publishing them on the
//     "anomalies" feed.
//   - gateway — the web surface: publishes ingested points to the bus
//     leader, reads through a query.Fanout spanning every store node,
//     tails the flag feed for SSE, and hosts the coordination
//     (ZooKeeper-like) service the whole cluster elects and registers
//     through.
//
// Roles combine freely; a node with all four is the degenerate
// single-process topology. Cluster membership lives in ephemeral
// znodes under /sentinel/cluster/nodes — each node refreshes its
// record (roles, rpc endpoint, TSD routes, partition groups led,
// replication health) about once a second, and GET /api/v1/cluster on
// any node renders the map.
package sentinel

import (
	"context"
	"encoding/gob"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/api"
	v1 "repro/internal/api/v1"
	"repro/internal/bus"
	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/fdr"
	"repro/internal/hbase"
	"repro/internal/ingest"
	"repro/internal/mllib"
	"repro/internal/proxy"
	"repro/internal/query"
	"repro/internal/rpc"
	"repro/internal/telemetry"
	"repro/internal/tsdb"
	"repro/internal/viz"
	"repro/internal/zk"
)

// Role names one responsibility a cluster node can carry.
type Role string

// The four node roles. A node may hold any combination.
const (
	RoleBroker  Role = "broker"
	RoleStore   Role = "store"
	RoleDetect  Role = "detect"
	RoleGateway Role = "gateway"
)

// ParseRoles parses a comma-separated role list ("store,detect").
func ParseRoles(s string) ([]Role, error) {
	var roles []Role
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		switch r := Role(part); r {
		case RoleBroker, RoleStore, RoleDetect, RoleGateway:
			roles = append(roles, r)
		default:
			return nil, fmt.Errorf("sentinel: unknown role %q", part)
		}
	}
	if len(roles) == 0 {
		return nil, errors.New("sentinel: empty role list")
	}
	return roles, nil
}

// Cluster-wide coordination paths and the rpc address of the
// coordination service.
const (
	clusterNodesPath = "/sentinel/cluster/nodes"
	zkAddr           = "zk"
)

// NodeConfig sizes one cluster node. Every node of a cluster must
// agree on Partitions, Units and SensorsPerUnit.
type NodeConfig struct {
	// Name uniquely identifies the node ("broker", "store-1", …). It
	// is the bus replica id, the membership znode name and the route
	// prefix peers reach this node's daemons under.
	Name string
	// Roles this node carries (at least one).
	Roles []Role

	// Listen is the TCP address the node's rpc transport binds
	// (default "127.0.0.1:0"); Listener, when set, is a pre-bound
	// listener used instead (tests pick ports before building the
	// peer map).
	Listen   string
	Listener net.Listener
	// Peers maps every cluster node's name to its TCP endpoint
	// (including this node's own entry, which is ignored for
	// routing decisions that have a local answer).
	Peers map[string]string
	// ZKNode names the peer hosting the coordination service. A node
	// with the gateway role defaults to hosting it itself; every
	// other node must name one.
	ZKNode string

	// Partitions is the cluster-wide bus partition count (default 4).
	Partitions int
	// Units and SensorsPerUnit shape the fleet the gateway renders
	// and the detectors evaluate (defaults 10 × 8).
	Units          int
	SensorsPerUnit int
	// StorageNodes is the region-server / TSD count of a store node's
	// local tier (default 2); SaltBuckets the row-key salting width
	// (default StorageNodes, -1 disables).
	StorageNodes int
	SaltBuckets  int
	// StorageWriters sizes a store node's consumer group draining the
	// bus into its proxy (default 2); DetectorWorkers a detect node's
	// pool (default 2).
	StorageWriters  int
	DetectorWorkers int
	// PrimaryDetector is the family detect nodes evaluate (default
	// "cusum" — streaming, needing no model catalog; model-based
	// families fail at evaluation time because cluster detect nodes
	// carry no trained models).
	PrimaryDetector string
	// DetectorParams overrides family tuning knobs on detect nodes,
	// merged over the defaults (e.g. {"warmup": 20}).
	DetectorParams map[string]float64
	// ExpectStores is how many store nodes must have registered
	// before detect and gateway roles finish booting (default 1).
	ExpectStores int
	// BootTimeout bounds waiting for the coordination service and the
	// expected store nodes (default 60s).
	BootTimeout time.Duration
	// Seed drives detector pseudo-randomness (default 42).
	Seed uint64
	// Now supplies "current" fleet time to the gateway's pages
	// (default wall-clock seconds).
	Now func() int64
}

func (c NodeConfig) withNodeDefaults() NodeConfig {
	if c.Listen == "" {
		c.Listen = "127.0.0.1:0"
	}
	if c.Partitions <= 0 {
		c.Partitions = 4
	}
	if c.Units <= 0 {
		c.Units = 10
	}
	if c.SensorsPerUnit <= 0 {
		c.SensorsPerUnit = 8
	}
	if c.StorageNodes <= 0 {
		c.StorageNodes = 2
	}
	if c.SaltBuckets == 0 {
		c.SaltBuckets = c.StorageNodes
	}
	if c.SaltBuckets < 0 {
		c.SaltBuckets = 0
	}
	if c.StorageWriters <= 0 {
		c.StorageWriters = 2
	}
	if c.DetectorWorkers <= 0 {
		c.DetectorWorkers = 2
	}
	if c.PrimaryDetector == "" {
		c.PrimaryDetector = "cusum"
	}
	if c.ExpectStores <= 0 {
		c.ExpectStores = 1
	}
	if c.BootTimeout <= 0 {
		c.BootTimeout = 60 * time.Second
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	return c
}

func (c NodeConfig) has(r Role) bool {
	for _, have := range c.Roles {
		if have == r {
			return true
		}
	}
	return false
}

// nodeRecord is the JSON payload of a membership znode.
type nodeRecord struct {
	Name               string   `json:"name"`
	Roles              []string `json:"roles"`
	Addr               string   `json:"addr"`
	TSDs               []string `json:"tsds,omitempty"`
	PartitionGroupsLed []int    `json:"partitionGroupsLed,omitempty"`
	Promotions         int64    `json:"promotions,omitempty"`
	FollowerLag        int64    `json:"followerLag,omitempty"`
}

var wireOnce sync.Once

// RegisterWireTypes registers the application payloads the cluster
// ships over the rpc transport — bus record values (unit batches,
// anomaly flags) and the TSD request/response DTOs — plus the wire
// identities of the storage-tier sentinel errors. StartNode calls it;
// exported for drivers that speak to a cluster without running a node.
func RegisterWireTypes() {
	wireOnce.Do(func() {
		gob.Register(&ingest.UnitBatch{})
		gob.Register(core.Anomaly{})
		gob.Register(&tsdb.PutBatch{})
		gob.Register(&tsdb.QueryRequest{})
		gob.Register(&tsdb.QueryResponse{})
		rpc.RegisterWireError(tsdb.ErrNoSuchMetric, tsdb.ErrBadPoint)
	})
}

// Node is one running cluster member.
type Node struct {
	cfg  NodeConfig
	addr string

	net       *rpc.Network
	transport *rpc.Transport
	ownNet    bool

	zkSrv    *zk.Server
	zkSvc    *zk.Service
	zkLocal  *zk.Session
	zkRemote *zk.RemoteClient
	zkc      zk.Client

	// Bus and BusSvc are set on broker and store roles (the bus
	// replica set); rb is every role's remote handle factory.
	Bus    *bus.Broker
	BusSvc *bus.Service
	rb     *bus.RemoteBus

	// Store-role tiers.
	Cluster *hbase.Cluster
	TSDB    *tsdb.Deployment
	Proxy   *proxy.Proxy
	Writers *ingest.StorageWriters

	// Detect-role pool.
	Pool *DetectorPool

	// Gateway-role surface.
	Fanout  *query.Fanout
	tail    *api.AnomalyTail
	handler http.Handler
	reg     *telemetry.Registry

	ctx       context.Context
	cancel    context.CancelFunc
	wg        sync.WaitGroup
	closeOnce sync.Once
}

// StartNode boots one cluster node and blocks until its roles are
// serving: the transport is listening, the coordination service is
// reachable, bus elections are joined, and (for detect and gateway
// roles) the expected store nodes have registered.
func StartNode(cfg NodeConfig) (node *Node, err error) {
	cfg = cfg.withNodeDefaults()
	if cfg.Name == "" {
		return nil, errors.New("sentinel: cluster node needs a name")
	}
	if len(cfg.Roles) == 0 {
		return nil, errors.New("sentinel: cluster node needs at least one role")
	}
	RegisterWireTypes()

	ctx, cancel := context.WithCancel(context.Background())
	n := &Node{cfg: cfg, ctx: ctx, cancel: cancel, reg: telemetry.NewRegistry()}
	defer func() {
		if err != nil {
			n.Close()
		}
	}()

	// The fabric. A store node reuses its storage cluster's network so
	// the TSD daemons answer on this node's one listener; other roles
	// get a fresh fabric.
	if cfg.has(RoleStore) {
		n.Cluster, err = hbase.NewCluster(hbase.Config{
			RegionServers: cfg.StorageNodes,
			Clock:         clock.Real{},
		})
		if err != nil {
			return nil, fmt.Errorf("sentinel: %s: boot cluster: %w", cfg.Name, err)
		}
		n.net = n.Cluster.Network()
	} else {
		n.net = rpc.NewNetwork(0, nil)
		n.ownNet = true
	}
	lis := cfg.Listener
	if lis == nil {
		if lis, err = net.Listen("tcp", cfg.Listen); err != nil {
			return nil, fmt.Errorf("sentinel: %s: listen: %w", cfg.Name, err)
		}
	}
	n.transport = rpc.ServeTCP(n.net, lis)
	n.addr = lis.Addr().String()

	// Routes: every peer's bus replica by exact address, and every
	// peer's whole namespace under "<name>/" (how the gateway reaches
	// a store's TSD daemons: "store-1/tsd/tsd-1"). The node's own
	// prefix routes through its loopback listener too, so prefixed
	// names resolve uniformly on combined-role nodes; exact local
	// registrations always win over routes.
	for name, ep := range cfg.Peers {
		n.net.AddRoute("bus/"+name, ep)
		n.net.AddRoute(name+"/", ep)
	}
	if _, ok := cfg.Peers[cfg.Name]; !ok {
		n.net.AddRoute("bus/"+cfg.Name, n.addr)
		n.net.AddRoute(cfg.Name+"/", n.addr)
	}

	// Coordination: the gateway hosts the service; everyone else
	// routes "zk" to it and connects with keepalive.
	zkNode := cfg.ZKNode
	if zkNode == "" && cfg.has(RoleGateway) {
		zkNode = cfg.Name
	}
	if zkNode == "" {
		return nil, fmt.Errorf("sentinel: %s: ZKNode required on nodes without the gateway role", cfg.Name)
	}
	if zkNode == cfg.Name {
		n.zkSrv = zk.NewServer()
		n.zkSvc = zk.NewService(n.zkSrv, 0)
		if err = n.zkSvc.Register(n.net, zkAddr, rpc.ServerConfig{Workers: 8, QueueCap: 1024}); err != nil {
			return nil, fmt.Errorf("sentinel: %s: register coordination service: %w", cfg.Name, err)
		}
		n.zkLocal = n.zkSrv.NewSession()
		n.zkc = n.zkLocal
	} else {
		ep, ok := cfg.Peers[zkNode]
		if !ok {
			return nil, fmt.Errorf("sentinel: %s: coordination node %q not in peers", cfg.Name, zkNode)
		}
		n.net.AddRoute(zkAddr, ep)
		bootCtx, done := context.WithTimeout(ctx, cfg.BootTimeout)
		n.zkRemote, err = connectZK(bootCtx, n.net)
		done()
		if err != nil {
			return nil, fmt.Errorf("sentinel: %s: reach coordination service on %q: %w", cfg.Name, zkNode, err)
		}
		n.zkc = n.zkRemote
	}
	if err = zk.EnsurePath(n.zkc, clusterNodesPath); err != nil {
		return nil, fmt.Errorf("sentinel: %s: ensure membership path: %w", cfg.Name, err)
	}

	// The bus replica set: brokers and stores hold partition logs and
	// stand in the leader elections, so killing the broker promotes a
	// store and acked records survive (publishes replicate to every
	// registered replica before acking).
	if cfg.has(RoleBroker) || cfg.has(RoleStore) {
		n.Bus = bus.New(bus.Config{Partitions: cfg.Partitions})
		n.BusSvc, err = bus.StartService(n.net, n.zkc, n.Bus, bus.ServiceConfig{
			Node: cfg.Name,
			Addr: "bus/" + cfg.Name,
		})
		if err != nil {
			return nil, fmt.Errorf("sentinel: %s: start bus service: %w", cfg.Name, err)
		}
	}
	n.rb = bus.NewRemoteBus(n.net, n.zkc, bus.RemoteBusConfig{
		Node:       cfg.Name,
		Partitions: cfg.Partitions,
	})

	// Store tier: deployment, table, proxy, and the storage consumer
	// group draining the shared topic through the proxy. Unbounded
	// retries: in a cluster the writers never drop a committed
	// record — redelivery and idempotent writes handle the rest.
	if cfg.has(RoleStore) {
		if n.TSDB, err = tsdb.NewDeployment(n.Cluster, cfg.StorageNodes, tsdb.TSDConfig{
			SaltBuckets: cfg.SaltBuckets,
		}); err != nil {
			return nil, fmt.Errorf("sentinel: %s: boot tsdb: %w", cfg.Name, err)
		}
		if err = n.TSDB.CreateTable(); err != nil {
			return nil, fmt.Errorf("sentinel: %s: create table: %w", cfg.Name, err)
		}
		if n.Proxy, err = proxy.New(n.net, n.TSDB.Addrs(), proxy.Config{MaxRetries: -1}); err != nil {
			return nil, fmt.Errorf("sentinel: %s: boot proxy: %w", cfg.Name, err)
		}
		n.Writers = ingest.StartStorageWriters(ctx,
			n.rb.Topic(TopicEnergy).Group(GroupStorage), n.Proxy, cfg.StorageWriters)
	}

	// Register membership before the blocking waits below, so peers
	// discover this node while it waits for them.
	if err = n.register(); err != nil {
		return nil, fmt.Errorf("sentinel: %s: register membership: %w", cfg.Name, err)
	}
	n.wg.Add(1)
	go n.refreshLoop()

	// Detection: a pool over the remote consumer group, writing flags
	// into the store tier over rpc and publishing them on the feed.
	if cfg.has(RoleDetect) {
		stores, werr := n.waitStores(ctx, cfg.ExpectStores, cfg.BootTimeout)
		if werr != nil {
			return nil, werr
		}
		var tsds []string
		for _, r := range stores {
			tsds = append(tsds, r.TSDs...)
		}
		g := n.rb.Topic(TopicEnergy).Group(GroupDetectors)
		g.SeekToEnd()
		n.Pool = NewDetectorPool(DetectorEnv{
			Sensors:     cfg.SensorsPerUnit,
			Primary:     cfg.PrimaryDetector,
			NewDetector: n.newDetector,
			Sink:        &remoteSink{net: n.net, addrs: tsds, timeout: 2 * time.Second},
			Flags:       n.rb.Topic(TopicAnomalies),
		}, g, cfg.DetectorWorkers)
	}

	// Gateway: one query engine per store node merged by a fanout
	// (caching disabled — remote engines see no write watermarks, so
	// cached windows would never invalidate), the SSE tail, and the
	// /api/v1 surface.
	var backend *viz.Backend
	if cfg.has(RoleGateway) {
		stores, werr := n.waitStores(ctx, cfg.ExpectStores, cfg.BootTimeout)
		if werr != nil {
			return nil, werr
		}
		engines := make([]*query.Engine, 0, len(stores))
		for _, r := range stores {
			engines = append(engines, query.New(n.net, r.TSDs, nil, query.Config{MaxEntries: -1}))
		}
		n.Fanout = query.NewFanout(engines...)
		backend = &viz.Backend{
			Q:         n.Fanout,
			Units:     cfg.Units,
			Sensors:   cfg.SensorsPerUnit,
			MaxPoints: 512,
		}
		n.tail = api.NewAnomalyTail(n.rb.Topic(TopicAnomalies), GroupStream+"-1")
	}

	n.registerMetrics()
	if cfg.has(RoleGateway) {
		now := cfg.Now
		if now == nil {
			now = func() int64 { return time.Now().Unix() }
		}
		n.handler = api.New(api.Config{
			Backend:   backend,
			Publisher: &api.BusPublisher{Topic: n.rb.Topic(TopicEnergy)},
			Query:     n.Fanout,
			Tail:      n.tail,
			Registry:  n.reg,
			HTML:      viz.NewServer(backend, now),
			Ready:     n.readyChecks(),
			Now:       now,
			Cluster:   n.ClusterStatus,
		})
	} else {
		n.handler = n.opsHandler()
	}
	return n, nil
}

// connectZK dials the coordination service until it answers or ctx
// expires — peers may still be booting.
func connectZK(ctx context.Context, network *rpc.Network) (*zk.RemoteClient, error) {
	for {
		c, err := zk.Connect(ctx, network, zkAddr, zk.RemoteConfig{})
		if err == nil {
			return c, nil
		}
		select {
		case <-time.After(250 * time.Millisecond):
		case <-ctx.Done():
			return nil, err
		}
	}
}

// Name returns the node's cluster-unique name.
func (n *Node) Name() string { return n.cfg.Name }

// Addr returns the TCP endpoint the node's rpc transport listens on.
func (n *Node) Addr() string { return n.addr }

// Handler returns the node's HTTP surface: the full /api/v1 gateway on
// gateway nodes, a minimal ops surface (metrics, cluster map, health)
// elsewhere.
func (n *Node) Handler() http.Handler { return n.handler }

// Registry returns the node's telemetry registry.
func (n *Node) Registry() *telemetry.Registry { return n.reg }

// newDetector builds one unit's detector. Cluster detect nodes carry
// no model catalog, so model-based families (mgd) fail at evaluation;
// the default primary is the streaming cusum family.
func (n *Node) newDetector(name string, unit int) (mllib.Detector, error) {
	params := map[string]float64{
		"level":     0.05,
		"procedure": float64(fdr.BH),
		"minvotes":  2,
	}
	for k, v := range n.cfg.DetectorParams {
		params[k] = v
	}
	return mllib.New(name, mllib.Context{
		Unit:    unit,
		Sensors: n.cfg.SensorsPerUnit,
		Seed:    n.cfg.Seed ^ uint64(unit)<<1,
		Params:  params,
		LoadModel: func() (any, error) {
			return nil, errors.New("sentinel: cluster detect nodes carry no model catalog")
		},
	})
}

// record builds this node's membership payload.
func (n *Node) record() nodeRecord {
	r := nodeRecord{Name: n.cfg.Name, Addr: n.addr}
	for _, role := range n.cfg.Roles {
		r.Roles = append(r.Roles, string(role))
	}
	if n.TSDB != nil {
		for _, a := range n.TSDB.Addrs() {
			r.TSDs = append(r.TSDs, n.cfg.Name+"/"+a)
		}
	}
	if n.BusSvc != nil {
		if n.BusSvc.IsLeader(0) {
			r.PartitionGroupsLed = []int{0}
		}
		r.Promotions = n.BusSvc.Promotions.Value()
		r.FollowerLag = n.BusSvc.FollowerLag([]string{TopicEnergy, TopicAnomalies})
	}
	return r
}

// register creates (or takes over) the node's ephemeral membership
// znode.
func (n *Node) register() error {
	data, err := json.Marshal(n.record())
	if err != nil {
		return err
	}
	path := clusterNodesPath + "/" + n.cfg.Name
	err = n.zkc.Create(path, data, true)
	if errors.Is(err, zk.ErrNodeExists) {
		// A previous incarnation's record whose session has not
		// expired yet: overwrite; our refresh loop keeps it fresh and
		// our session's expiry will reap it.
		return n.zkc.Set(path, data, -1)
	}
	return err
}

// refreshLoop re-publishes the membership record about once a second
// so peers see leadership, promotion and lag changes; it re-creates
// the znode if a session hiccup reaped it.
func (n *Node) refreshLoop() {
	defer n.wg.Done()
	t := time.NewTicker(time.Second)
	defer t.Stop()
	for {
		select {
		case <-n.ctx.Done():
			return
		case <-t.C:
		}
		data, err := json.Marshal(n.record())
		if err != nil {
			continue
		}
		path := clusterNodesPath + "/" + n.cfg.Name
		if err := n.zkc.Set(path, data, -1); errors.Is(err, zk.ErrNoNode) {
			_ = n.zkc.Create(path, data, true)
		}
	}
}

// clusterRecords reads every live membership record, sorted by name.
func (n *Node) clusterRecords() ([]nodeRecord, error) {
	kids, err := n.zkc.Children(clusterNodesPath)
	if err != nil {
		return nil, err
	}
	recs := make([]nodeRecord, 0, len(kids))
	for _, kid := range kids {
		data, _, err := n.zkc.Get(clusterNodesPath + "/" + kid)
		if err != nil {
			continue // departed between list and read
		}
		var r nodeRecord
		if json.Unmarshal(data, &r) != nil {
			continue
		}
		recs = append(recs, r)
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].Name < recs[j].Name })
	return recs, nil
}

// waitStores blocks until want store nodes have registered with their
// TSD routes (their storage tier is up).
func (n *Node) waitStores(ctx context.Context, want int, timeout time.Duration) ([]nodeRecord, error) {
	deadline := time.Now().Add(timeout)
	for {
		recs, err := n.clusterRecords()
		if err == nil {
			stores := recs[:0:0]
			for _, r := range recs {
				if len(r.TSDs) > 0 {
					stores = append(stores, r)
				}
			}
			if len(stores) >= want {
				return stores, nil
			}
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("sentinel: %s: timed out waiting for %d store node(s)", n.cfg.Name, want)
		}
		select {
		case <-time.After(200 * time.Millisecond):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// ClusterStatus renders the membership map — the GET /api/v1/cluster
// payload. Any node can serve it; the records themselves are pushed by
// their owners.
func (n *Node) ClusterStatus() v1.ClusterResponse {
	recs, err := n.clusterRecords()
	if err != nil {
		return v1.ClusterResponse{}
	}
	resp := v1.ClusterResponse{Nodes: make([]v1.ClusterNode, 0, len(recs))}
	for _, r := range recs {
		resp.Nodes = append(resp.Nodes, v1.ClusterNode{
			Name:               r.Name,
			Roles:              r.Roles,
			Addr:               r.Addr,
			TSDs:               r.TSDs,
			PartitionGroupsLed: r.PartitionGroupsLed,
			Promotions:         r.Promotions,
			FollowerLag:        r.FollowerLag,
		})
	}
	return resp
}

// readyChecks probes the cluster dependencies a serving node needs:
// the coordination service, a bus leadership election with candidates,
// and the expected store population.
func (n *Node) readyChecks() []api.ReadyCheck {
	return []api.ReadyCheck{
		{Name: "coordination", Check: func() error {
			_, err := n.zkc.Children(clusterNodesPath)
			return err
		}},
		{Name: "bus", Check: func() error {
			kids, err := n.zkc.Children("/sentinel/bus/pg-0")
			if err != nil {
				return err
			}
			if len(kids) == 0 {
				return errors.New("no bus leader candidates")
			}
			return nil
		}},
		{Name: "stores", Check: func() error {
			recs, err := n.clusterRecords()
			if err != nil {
				return err
			}
			stores := 0
			for _, r := range recs {
				if len(r.TSDs) > 0 {
					stores++
				}
			}
			if stores == 0 {
				return errors.New("no store nodes registered")
			}
			if stores < n.cfg.ExpectStores {
				return api.Degraded(fmt.Errorf("%d of %d store nodes registered", stores, n.cfg.ExpectStores))
			}
			return nil
		}},
	}
}

// registerMetrics exposes the node's per-role counters plus the
// cluster telemetry every node carries (partition groups led,
// promotions absorbed, replication traffic, follower lag).
func (n *Node) registerMetrics() {
	reg := n.reg
	reg.RegisterFunc("cluster_partition_groups_led", func() int64 {
		if n.BusSvc == nil {
			return 0
		}
		return int64(n.BusSvc.PartitionsLed())
	})
	reg.RegisterFunc("cluster_nodes", func() int64 {
		recs, err := n.clusterRecords()
		if err != nil {
			return -1
		}
		return int64(len(recs))
	})
	if n.BusSvc != nil {
		reg.RegisterCounter("cluster_promotions", &n.BusSvc.Promotions)
		reg.RegisterCounter("cluster_replicated", &n.BusSvc.Replicated)
		reg.RegisterCounter("cluster_member_evictions", &n.BusSvc.Evictions)
		reg.RegisterFunc("cluster_follower_lag", func() int64 {
			return n.BusSvc.FollowerLag([]string{TopicEnergy, TopicAnomalies})
		})
	}
	if n.Bus != nil {
		reg.RegisterCounter("bus_published", &n.Bus.Published)
		reg.RegisterCounter("bus_polled", &n.Bus.Polled)
		reg.RegisterCounter("bus_rebalances", &n.Bus.Rebalances)
	}
	if n.Writers != nil {
		reg.RegisterCounter("writer_delivered", &n.Writers.Delivered)
		reg.RegisterCounter("writer_failures", &n.Writers.Failures)
		reg.RegisterCounter("writer_parks", &n.Writers.Parks)
		reg.RegisterGauge("writer_parked", &n.Writers.Parked)
	}
	if n.Proxy != nil {
		reg.RegisterCounter("proxy_accepted", &n.Proxy.Accepted)
		reg.RegisterCounter("proxy_delivered", &n.Proxy.Delivered)
		reg.RegisterCounter("proxy_dropped", &n.Proxy.Dropped)
		reg.RegisterCounter("proxy_retries", &n.Proxy.Retries)
	}
	if n.TSDB != nil {
		reg.RegisterFunc("tsdb_points_written", n.TSDB.PointsWritten)
		reg.RegisterFunc("tsdb_queries_served", n.TSDB.QueriesServed)
	}
	if n.Pool != nil {
		reg.RegisterCounter("samples_evaluated", &n.Pool.SamplesEvaluated)
		reg.RegisterCounter("anomalies_written", &n.Pool.AnomaliesWritten)
		reg.RegisterCounter("detector_parks", &n.Pool.Parks)
		reg.RegisterGauge("detector_parked", &n.Pool.Parked)
	}
	if n.Fanout != nil {
		reg.RegisterCounter("query_fanout_queries", &n.Fanout.Queries)
		reg.RegisterCounter("query_group_errors", &n.Fanout.GroupErrors)
	}
}

// opsHandler is the HTTP surface of non-gateway nodes: metrics, the
// cluster map and a liveness probe.
func (n *Node) opsHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/api/v1/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		n.reg.Expose(w)
	})
	mux.HandleFunc("/api/v1/cluster", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", v1.ContentTypeJSON)
		_ = json.NewEncoder(w).Encode(n.ClusterStatus())
	})
	return mux
}

// Close tears the node down: consumers and servers first, then the
// tiers under them. The ephemeral membership record is deleted eagerly
// so peers need not wait for session expiry.
func (n *Node) Close() {
	n.closeOnce.Do(func() {
		n.cancel()
		n.wg.Wait()
		if n.zkc != nil {
			_ = n.zkc.Delete(clusterNodesPath + "/" + n.cfg.Name)
		}
		if n.tail != nil {
			n.tail.Close()
		}
		if n.Pool != nil {
			n.Pool.Stop()
		}
		if n.Writers != nil {
			n.Writers.Stop()
		}
		if n.BusSvc != nil {
			n.BusSvc.Close()
		}
		if n.Bus != nil {
			n.Bus.Close()
		}
		if n.Proxy != nil {
			n.Proxy.Close()
		}
		if n.zkRemote != nil {
			n.zkRemote.Close()
		}
		if n.zkLocal != nil {
			n.zkLocal.Close()
		}
		if n.zkSvc != nil {
			n.zkSvc.Close()
		}
		if n.transport != nil {
			n.transport.Close()
		}
		if n.Cluster != nil {
			n.Cluster.Stop()
		}
		if n.ownNet && n.net != nil {
			n.net.Close()
		}
	})
}

// remoteSink writes anomaly flags into the store tier over rpc,
// spreading units across the cluster's TSD daemons. Reads merge every
// store group (query.Fanout), so any daemon is a correct destination.
type remoteSink struct {
	net     *rpc.Network
	addrs   []string
	timeout time.Duration
}

func (s *remoteSink) WriteAnomaly(a core.Anomaly) error {
	if len(s.addrs) == 0 {
		return errors.New("sentinel: no store TSDs")
	}
	addr := s.addrs[a.Unit%len(s.addrs)]
	ctx, cancel := context.WithTimeout(context.Background(), s.timeout)
	defer cancel()
	_, err := s.net.Call(ctx, addr, "put", &tsdb.PutBatch{Points: []tsdb.Point{{
		Metric:    tsdb.MetricAnomaly,
		Tags:      tsdb.EnergyTags(a.Unit, a.Sensor),
		Timestamp: a.Timestamp,
		Value:     a.Z,
	}}})
	return err
}

// ClusterStatus is the degenerate single-process membership map: one
// node holding every role. It keeps /api/v1/cluster truthful on a
// System-served gateway.
func (s *System) ClusterStatus() v1.ClusterResponse {
	return v1.ClusterResponse{Nodes: []v1.ClusterNode{{
		Name: "local",
		Roles: []string{
			string(RoleBroker), string(RoleStore),
			string(RoleDetect), string(RoleGateway),
		},
	}}}
}
