package sentinel

import (
	"context"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	v1 "repro/internal/api/v1"
	"repro/sentinel/client"
)

// TestEndToEndThroughPublicAPI is the acceptance test for the /api/v1
// gateway: the whole loop — ingest, streaming detection, cached
// queries, fleet analytics and the live SSE anomaly feed — driven
// exclusively through the sentinel/client SDK against the public
// surface. No direct writes to the bus, storage or detector tiers.
func TestEndToEndThroughPublicAPI(t *testing.T) {
	const (
		units   = 2
		sensors = 8
		train   = 60
	)
	sys, err := New(Config{
		StorageNodes:   2,
		Units:          units,
		SensorsPerUnit: sensors,
		Seed:           7,
		// Fault onset far beyond the test horizon: the only anomalies
		// are the ones injected through the API below.
		FaultOnset: 1 << 20,
		// A streaming family shadows the primary so the detectors
		// endpoint exercises the full mode taxonomy.
		ShadowDetectors: []string{"cusum"},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()

	handler, tail := sys.Gateway(train, GatewayConfig{AccessLog: log.New(io.Discard, "", 0)})
	defer tail.Close()
	srv := httptest.NewServer(handler)
	defer srv.Close()
	c, err := client.New(srv.URL, client.WithHTTPClient(srv.Client()))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	// --- Ingest: the training range goes in through POST /points. ---
	var pts []v1.Point
	for u := 0; u < units; u++ {
		for ts := int64(0); ts < train; ts++ {
			for s := 0; s < sensors; s++ {
				pts = append(pts, v1.Point{
					Metric:    "energy",
					Timestamp: ts,
					Value:     sys.Fleet.Value(u, s, ts),
					Tags:      map[string]string{"unit": strconv.Itoa(u), "sensor": strconv.Itoa(s)},
				})
			}
		}
	}
	if n, err := c.PutPoints(ctx, pts); err != nil || n != len(pts) {
		t.Fatalf("training put = %d, %v (want %d)", n, err, len(pts))
	}
	// Wait until the storage group drained the put into the TSD tier.
	if err := sys.Topic().Group(GroupStorage).Sync(ctx); err != nil {
		t.Fatalf("storage drain: %v", err)
	}
	sys.Proxy.Flush()

	// --- Train (an operator-side batch job, not an API surface). ---
	if err := sys.TrainFromTSDB(0, train, true); err != nil {
		t.Fatalf("train: %v", err)
	}

	// --- Detect: streaming workers consume everything published next. ---
	pool := sys.StartDetectors(1)
	defer pool.Stop()

	// Readiness now reports every tier up.
	ready, err := c.Ready(ctx)
	if err != nil || !ready.Ready {
		t.Fatalf("readyz = %+v, %v", ready, err)
	}

	// --- Stream: subscribe before injecting the faults. ---
	stream, err := c.StreamAnomalies(ctx)
	if err != nil {
		t.Fatalf("stream: %v", err)
	}
	defer stream.Close()
	waitDeadline := time.Now().Add(10 * time.Second)
	for tail.Subscribers() == 0 {
		if time.Now().After(waitDeadline) {
			t.Fatal("stream never subscribed")
		}
		time.Sleep(time.Millisecond)
	}

	// Inject three grossly anomalous rows for unit 0 through the API —
	// complete rows (every sensor, one timestamp) so the detector
	// evaluates them as published.
	for ts := int64(100); ts < 103; ts++ {
		row := make([]v1.Point, sensors)
		for s := 0; s < sensors; s++ {
			row[s] = v1.Point{
				Metric:    "energy",
				Timestamp: ts,
				Value:     sys.Fleet.Value(0, s, ts) + 50,
				Tags:      map[string]string{"unit": "0", "sensor": strconv.Itoa(s)},
			}
		}
		if _, err := c.PutPoints(ctx, row); err != nil {
			t.Fatalf("anomalous put t=%d: %v", ts, err)
		}
	}
	if err := pool.Sync(ctx); err != nil {
		t.Fatalf("detector sync: %v", err)
	}
	if pool.AnomaliesWritten.Value() == 0 {
		t.Fatal("detector flagged nothing; the stream has nothing to show")
	}

	// --- Stream delivers the flags live. ---
	ev, err := stream.Next()
	if err != nil {
		t.Fatalf("stream.Next: %v", err)
	}
	if ev.Unit != 0 || ev.Timestamp < 100 || ev.Timestamp > 102 {
		t.Fatalf("streamed event = %+v, want unit 0 in [100,102]", ev)
	}
	if ev.Z == 0 {
		t.Fatalf("streamed event carries no severity: %+v", ev)
	}
	if ev.Detector != "mgd" || ev.Score == 0 {
		t.Fatalf("streamed event missing detector attribution: %+v", ev)
	}

	// --- Detector tier status over the typed SDK. ---
	if err := pool.DrainShadows(ctx); err != nil {
		t.Fatalf("drain shadows: %v", err)
	}
	ds, err := c.Detectors(ctx)
	if err != nil {
		t.Fatalf("detectors: %v", err)
	}
	if ds.Primary != "mgd" {
		t.Fatalf("primary = %q, want mgd", ds.Primary)
	}
	modes := map[string]string{}
	var shadowBatches int64
	for _, d := range ds.Detectors {
		modes[d.Name] = d.Mode
		if d.Name == "cusum" {
			shadowBatches = d.Agreements + d.Disagreements
		}
	}
	if modes["mgd"] != "primary" || modes["cusum"] != "shadow" || modes["iforest"] != "off" {
		t.Fatalf("detector modes = %v", modes)
	}
	// The primary flagged rows; the shadow compared them (agreement or
	// not — cusum is still warming up on this short horizon).
	if shadowBatches == 0 {
		t.Fatalf("shadow never compared a flagged row: %+v", ds.Detectors)
	}

	// --- Query: raw series reads come back through the cached tier. ---
	series, err := c.Query(ctx, client.QueryParams{Unit: "0", Sensor: "0", From: 95, To: 105})
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	found := false
	for _, s := range series {
		for _, smp := range s.Samples {
			if smp.Timestamp == 100 {
				found = true
			}
		}
	}
	if !found {
		t.Fatalf("query did not surface the injected samples: %+v", series)
	}

	// --- Analytics: fleet, machine and ranking see the flags. ---
	fleet, err := c.FleetAll(ctx, client.FleetParams{From: 95, To: 105, Limit: 1})
	if err != nil {
		t.Fatalf("fleet: %v", err)
	}
	if len(fleet.Units) != units || fleet.Anomalies == 0 {
		t.Fatalf("fleet = %+v, want %d units with anomalies", fleet, units)
	}
	mv, err := c.Machine(ctx, 0, 95, 105)
	if err != nil || mv.Anomalies == 0 {
		t.Fatalf("machine = %+v, %v", mv, err)
	}
	top, err := c.TopAnomalies(ctx, 95, 105, 5)
	if err != nil || len(top) == 0 || top[0].Unit != 0 {
		t.Fatalf("top = %+v, %v", top, err)
	}

	// --- Legacy shims still serve the old URLs over the same tiers. ---
	for _, path := range []string{
		"/api/fleet?from=95&to=105",
		"/api/machine/0?from=95&to=105",
		"/api/query?unit=0&sensor=0&from=95&to=105",
		"/api/top?from=95&to=105",
		"/metrics",
	} {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatalf("legacy %s: %v", path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("legacy %s = %d (%s)", path, resp.StatusCode, body)
		}
		if resp.Header.Get("Deprecation") != "true" {
			t.Fatalf("legacy %s not marked deprecated", path)
		}
	}

	// The legacy query path went through the cached engine, not a raw
	// TSD bypass: a repeat is served with zero extra storage scans.
	scans := sys.TSDB.QueriesServed()
	resp, err := srv.Client().Get(srv.URL + "/api/query?unit=0&sensor=0&from=95&to=105")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(raw), "energy{sensor=0,unit=0}") {
		t.Fatalf("legacy query body = %s", raw)
	}
	if got := sys.TSDB.QueriesServed(); got != scans {
		t.Fatalf("legacy repeat query hit storage: %d → %d scans", scans, got)
	}
}
