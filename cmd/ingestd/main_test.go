package main

import (
	"context"
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/bus"
	"repro/internal/hbase"
	"repro/internal/ingest"
	"repro/internal/proxy"
	"repro/internal/tsdb"
)

// testStack boots the full ingestd pipeline: bus topic → storage
// writers → proxy → TSD. flush blocks until everything published has
// reached storage.
func testStack(t *testing.T) (topic *bus.Topic, tsd *tsdb.TSD, flush func()) {
	t.Helper()
	cluster, err := hbase.NewCluster(hbase.Config{RegionServers: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cluster.Stop)
	deploy, err := tsdb.NewDeployment(cluster, 1, tsdb.TSDConfig{SaltBuckets: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := deploy.CreateTable(); err != nil {
		t.Fatal(err)
	}
	px, err := proxy.New(cluster.Network(), deploy.Addrs(), proxy.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(px.Close)
	broker := bus.New(bus.Config{Partitions: 4})
	t.Cleanup(broker.Close)
	topic = broker.Topic("energy")
	group := topic.Group("storage")
	writers := ingest.StartStorageWriters(context.Background(), group, px, 2)
	t.Cleanup(writers.Stop)
	flush = func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := group.Sync(ctx); err != nil {
			t.Fatalf("storage group never drained: %v", err)
		}
		px.Flush()
	}
	return topic, deploy.TSDs()[0], flush
}

func TestPutJSONEndpoint(t *testing.T) {
	topic, tsd, flush := testStack(t)
	h := handlePutJSON(topic)
	body := `[{"metric":"energy","timestamp":11,"value":3.5,"tags":{"unit":"1","sensor":"2"}}]`
	rec := httptest.NewRecorder()
	h(rec, httptest.NewRequest("POST", "/api/put", strings.NewReader(body)))
	if rec.Code != 204 {
		t.Fatalf("status = %d (%s)", rec.Code, rec.Body)
	}
	flush()
	series, err := tsd.Query(tsdb.Query{Metric: "energy", Tags: tsdb.EnergyTags(1, 2), Start: 0, End: 100})
	if err != nil || len(series) != 1 || series[0].Samples[0].Value != 3.5 {
		t.Fatalf("stored = %+v, %v", series, err)
	}
	// Errors.
	rec = httptest.NewRecorder()
	h(rec, httptest.NewRequest("GET", "/api/put", nil))
	if rec.Code != 405 {
		t.Fatalf("GET status = %d", rec.Code)
	}
	rec = httptest.NewRecorder()
	h(rec, httptest.NewRequest("POST", "/api/put", strings.NewReader("{bad")))
	if rec.Code != 400 {
		t.Fatalf("bad body status = %d", rec.Code)
	}
}

func TestPutLinesEndpoint(t *testing.T) {
	topic, tsd, flush := testStack(t)
	h := handlePutLines(topic)
	body := "put energy 20 1.25 unit=4 sensor=5\n\nput energy 21 1.5 unit=4 sensor=5\n"
	rec := httptest.NewRecorder()
	h(rec, httptest.NewRequest("POST", "/api/put/line", strings.NewReader(body)))
	if rec.Code != 204 {
		t.Fatalf("status = %d (%s)", rec.Code, rec.Body)
	}
	flush()
	series, err := tsd.Query(tsdb.Query{Metric: "energy", Tags: tsdb.EnergyTags(4, 5), Start: 0, End: 100})
	if err != nil || len(series) != 1 || len(series[0].Samples) != 2 {
		t.Fatalf("stored = %+v, %v", series, err)
	}
	rec = httptest.NewRecorder()
	h(rec, httptest.NewRequest("POST", "/api/put/line", strings.NewReader("bogus line\n")))
	if rec.Code != 400 {
		t.Fatalf("bad line status = %d", rec.Code)
	}
}

func TestQueryEndpoint(t *testing.T) {
	_, tsd, _ := testStack(t)
	if err := tsd.Put([]tsdb.Point{tsdb.EnergyPoint(7, 8, 30, 9.75)}); err != nil {
		t.Fatal(err)
	}
	h := handleQuery(tsd)
	rec := httptest.NewRecorder()
	h(rec, httptest.NewRequest("GET", "/api/query?unit=7&sensor=8&from=0&to=100", nil))
	if rec.Code != 200 {
		t.Fatalf("status = %d (%s)", rec.Code, rec.Body)
	}
	out := rec.Body.String()
	if !strings.Contains(out, "energy{sensor=8,unit=7}") || !strings.Contains(out, "[30,9.75]") {
		t.Fatalf("query body = %s", out)
	}
	// Missing 'to' is a client error.
	rec = httptest.NewRecorder()
	h(rec, httptest.NewRequest("GET", "/api/query?unit=7", nil))
	if rec.Code != 400 {
		t.Fatalf("missing to status = %d", rec.Code)
	}
}

// TestPublishRoutesMixedUnits proves one HTTP request carrying many
// units fans out across partitions keyed by unit.
func TestPublishRoutesMixedUnits(t *testing.T) {
	topic, tsd, flush := testStack(t)
	h := handlePutLines(topic)
	var sb strings.Builder
	for u := 0; u < 8; u++ {
		fmt.Fprintf(&sb, "put energy 40 2.5 unit=%d sensor=0\n", u)
	}
	rec := httptest.NewRecorder()
	h(rec, httptest.NewRequest("POST", "/api/put/line", strings.NewReader(sb.String())))
	if rec.Code != 204 {
		t.Fatalf("status = %d (%s)", rec.Code, rec.Body)
	}
	touched := 0
	for p := 0; p < topic.Partitions(); p++ {
		if topic.HighWater(p) > 0 {
			touched++
		}
	}
	if touched < 2 {
		t.Fatalf("8 units landed on %d partitions; want spread", touched)
	}
	flush()
	for u := 0; u < 8; u++ {
		series, err := tsd.Query(tsdb.Query{Metric: "energy", Tags: tsdb.EnergyTags(u, 0), Start: 0, End: 100})
		if err != nil || len(series) != 1 {
			t.Fatalf("unit %d: stored = %+v, %v", u, series, err)
		}
	}
}
