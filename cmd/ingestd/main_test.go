package main

import (
	"context"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/bus"
	"repro/internal/hbase"
	"repro/internal/ingest"
	"repro/internal/proxy"
	"repro/internal/query"
	"repro/internal/resilience"
	"repro/internal/telemetry"
	"repro/internal/tsdb"
)

// testLogger silences gateway access logs in tests.
func testLogger() *log.Logger { return log.New(io.Discard, "", 0) }

// testStack boots the full ingestd pipeline — bus topic → storage
// writers → proxy → TSD tier, fronted by the /api/v1 gateway exactly
// as main() wires it. flush blocks until everything published has
// reached storage.
func testStack(t *testing.T) (gw *api.Gateway, topic *bus.Topic, deploy *tsdb.Deployment, engine *query.Engine, flush func()) {
	t.Helper()
	cluster, err := hbase.NewCluster(hbase.Config{RegionServers: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cluster.Stop)
	deploy, err = tsdb.NewDeployment(cluster, 2, tsdb.TSDConfig{SaltBuckets: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := deploy.CreateTable(); err != nil {
		t.Fatal(err)
	}
	px, err := proxy.New(cluster.Network(), deploy.Addrs(), proxy.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(px.Close)
	broker := bus.New(bus.Config{Partitions: 4})
	t.Cleanup(broker.Close)
	topic = broker.Topic("energy")
	group := topic.Group("storage")
	writers := ingest.StartStorageWriters(context.Background(), bus.LocalGroup{Group: group}, px, 2)
	t.Cleanup(writers.Stop)
	engine = query.NewFromDeployment(deploy, query.Config{MaxEntries: 64})
	reg := telemetry.NewRegistry()
	registerMetrics(reg, broker, group, writers, px, deploy, engine, resilience.NewGroup(resilience.BreakerConfig{}))
	gw = api.New(api.Config{
		Publisher: &api.BusPublisher{Topic: bus.LocalTopic{Topic: topic}},
		Query:     engine,
		Registry:  reg,
		AccessLog: testLogger(),
	})
	flush = func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := group.Sync(ctx); err != nil {
			t.Fatalf("storage group never drained: %v", err)
		}
		px.Flush()
	}
	return gw, topic, deploy, engine, flush
}

func do(t *testing.T, gw http.Handler, method, path, body, contentType string) *httptest.ResponseRecorder {
	t.Helper()
	var req *http.Request
	if body == "" {
		req = httptest.NewRequest(method, path, nil)
	} else {
		req = httptest.NewRequest(method, path, strings.NewReader(body))
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	rec := httptest.NewRecorder()
	gw.ServeHTTP(rec, req)
	return rec
}

func TestPutJSONEndpoint(t *testing.T) {
	gw, _, deploy, _, flush := testStack(t)
	body := `[{"metric":"energy","timestamp":11,"value":3.5,"tags":{"unit":"1","sensor":"2"}}]`
	rec := do(t, gw, "POST", "/api/v1/points", body, "application/json")
	if rec.Code != 200 {
		t.Fatalf("status = %d (%s)", rec.Code, rec.Body)
	}
	if !strings.Contains(rec.Body.String(), `"accepted":1`) {
		t.Fatalf("body = %s", rec.Body)
	}
	flush()
	series, err := deploy.TSDs()[0].Query(tsdb.Query{Metric: "energy", Tags: tsdb.EnergyTags(1, 2), Start: 0, End: 100})
	if err != nil || len(series) != 1 || series[0].Samples[0].Value != 3.5 {
		t.Fatalf("stored = %+v, %v", series, err)
	}
	// Errors: wrong method is 405; a bad body is a 400 envelope.
	if rec = do(t, gw, "GET", "/api/v1/points", "", ""); rec.Code != 405 {
		t.Fatalf("GET status = %d", rec.Code)
	}
	rec = do(t, gw, "POST", "/api/v1/points", "{bad", "application/json")
	if rec.Code != 400 || !strings.Contains(rec.Body.String(), `"code":"bad_request"`) {
		t.Fatalf("bad body status = %d (%s)", rec.Code, rec.Body)
	}
}

// TestLegacyPutShims proves the pre-v1 URLs still serve, marked
// deprecated, with their historical 204 answer.
func TestLegacyPutShims(t *testing.T) {
	gw, _, deploy, _, flush := testStack(t)
	rec := do(t, gw, "POST", "/api/put",
		`{"metric":"energy","timestamp":12,"value":1.5,"tags":{"unit":"3","sensor":"1"}}`, "application/json")
	if rec.Code != 204 {
		t.Fatalf("legacy put status = %d (%s)", rec.Code, rec.Body)
	}
	if rec.Header().Get("Deprecation") != "true" {
		t.Fatal("legacy put not marked deprecated")
	}
	if !strings.Contains(rec.Header().Get("Link"), "/api/v1/points") {
		t.Fatalf("legacy put Link = %q", rec.Header().Get("Link"))
	}
	rec = do(t, gw, "POST", "/api/put/line", "put energy 20 1.25 unit=4 sensor=5\n\nput energy 21 1.5 unit=4 sensor=5\n", "")
	if rec.Code != 204 {
		t.Fatalf("legacy line status = %d (%s)", rec.Code, rec.Body)
	}
	flush()
	series, err := deploy.TSDs()[0].Query(tsdb.Query{Metric: "energy", Tags: tsdb.EnergyTags(4, 5), Start: 0, End: 100})
	if err != nil || len(series) != 1 || len(series[0].Samples) != 2 {
		t.Fatalf("stored = %+v, %v", series, err)
	}
	if rec = do(t, gw, "POST", "/api/put/line", "bogus line\n", ""); rec.Code != 400 {
		t.Fatalf("bad line status = %d", rec.Code)
	}
}

// TestPutLinesV1 covers the text/plain spelling of the v1 write path.
func TestPutLinesV1(t *testing.T) {
	gw, _, deploy, _, flush := testStack(t)
	rec := do(t, gw, "POST", "/api/v1/points", "put energy 30 2.25 unit=6 sensor=0\n", "text/plain")
	if rec.Code != 200 {
		t.Fatalf("status = %d (%s)", rec.Code, rec.Body)
	}
	flush()
	series, err := deploy.TSDs()[0].Query(tsdb.Query{Metric: "energy", Tags: tsdb.EnergyTags(6, 0), Start: 0, End: 100})
	if err != nil || len(series) != 1 {
		t.Fatalf("stored = %+v, %v", series, err)
	}
}

// TestLegacyQueryFormatPreserved pins the pre-v1 /api/query contract:
// `to` required, hand-rolled [{"series":…,"samples":[[t,v]]}] body —
// now served through the cached query tier.
func TestLegacyQueryFormatPreserved(t *testing.T) {
	gw, _, deploy, _, _ := testStack(t)
	if err := deploy.TSDs()[0].Put([]tsdb.Point{tsdb.EnergyPoint(7, 8, 30, 9.75)}); err != nil {
		t.Fatal(err)
	}
	rec := do(t, gw, "GET", "/api/query?unit=7&sensor=8&from=0&to=100", "", "")
	if rec.Code != 200 {
		t.Fatalf("status = %d (%s)", rec.Code, rec.Body)
	}
	out := rec.Body.String()
	if !strings.Contains(out, "energy{sensor=8,unit=7}") || !strings.Contains(out, "[30,9.75]") {
		t.Fatalf("query body = %s", out)
	}
	if rec.Header().Get("Deprecation") != "true" {
		t.Fatal("legacy query not marked deprecated")
	}
	// Missing 'to' is a client error.
	if rec = do(t, gw, "GET", "/api/query?unit=7", "", ""); rec.Code != 400 {
		t.Fatalf("missing to status = %d", rec.Code)
	}
}

// TestQueryServedFromCacheNotTSD is the regression test for the old
// /api/query handler bypassing the query tier: a repeated identical
// query must be a cache hit — zero additional TSD scans.
func TestQueryServedFromCacheNotTSD(t *testing.T) {
	gw, _, deploy, engine, flush := testStack(t)
	body := `[{"metric":"energy","timestamp":40,"value":2.5,"tags":{"unit":"1","sensor":"0"}},
	          {"metric":"energy","timestamp":41,"value":2.75,"tags":{"unit":"1","sensor":"0"}}]`
	if rec := do(t, gw, "POST", "/api/v1/points", body, "application/json"); rec.Code != 200 {
		t.Fatalf("put status = %d", rec.Code)
	}
	flush()
	const url = "/api/v1/query?unit=1&sensor=0&from=0&to=100"
	rec := do(t, gw, "GET", url, "", "")
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), `"v":2.75`) {
		t.Fatalf("first query = %d (%s)", rec.Code, rec.Body)
	}
	scans := deploy.QueriesServed()
	hits := engine.CacheHits.Value()
	rec = do(t, gw, "GET", url, "", "")
	if rec.Code != 200 {
		t.Fatalf("repeat query = %d", rec.Code)
	}
	if got := deploy.QueriesServed(); got != scans {
		t.Fatalf("repeated query hit storage: %d → %d TSD scans (query tier bypassed)", scans, got)
	}
	if engine.CacheHits.Value() <= hits {
		t.Fatal("repeated query did not hit the window cache")
	}
	// The legacy shim shares the same engine and cache.
	scans = deploy.QueriesServed()
	if rec = do(t, gw, "GET", "/api/query?unit=1&sensor=0&from=0&to=100", "", ""); rec.Code != 200 {
		t.Fatalf("legacy query = %d", rec.Code)
	}
	if got := deploy.QueriesServed(); got != scans {
		t.Fatalf("legacy query bypassed the cache: %d → %d TSD scans", scans, got)
	}
}

// TestMetricsUnified proves both metrics paths serve the registry
// exposition (the hand-rolled /metrics writer is gone).
func TestMetricsUnified(t *testing.T) {
	gw, _, _, _, flush := testStack(t)
	if rec := do(t, gw, "POST", "/api/v1/points",
		`[{"metric":"energy","timestamp":1,"value":1,"tags":{"unit":"0","sensor":"0"}}]`, "application/json"); rec.Code != 200 {
		t.Fatalf("put = %d", rec.Code)
	}
	flush()
	for _, path := range []string{"/api/v1/metrics", "/metrics"} {
		rec := do(t, gw, "GET", path, "", "")
		if rec.Code != 200 {
			t.Fatalf("%s status = %d", path, rec.Code)
		}
		body := rec.Body.String()
		for _, want := range []string{"bus_published 1", "accepted 1", "http_requests"} {
			if !strings.Contains(body, want) {
				t.Fatalf("%s missing %q:\n%s", path, want, body)
			}
		}
	}
	// The legacy path is a shim: deprecated, pointing at v1.
	rec := do(t, gw, "GET", "/metrics", "", "")
	if rec.Header().Get("Deprecation") != "true" {
		t.Fatal("legacy /metrics not marked deprecated")
	}
}

// TestReadyzDistinctFromHealthz: liveness always answers; readiness
// reflects the bus state.
func TestReadyzDistinctFromHealthz(t *testing.T) {
	cluster, err := hbase.NewCluster(hbase.Config{RegionServers: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cluster.Stop)
	deploy, err := tsdb.NewDeployment(cluster, 1, tsdb.TSDConfig{SaltBuckets: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := deploy.CreateTable(); err != nil {
		t.Fatal(err)
	}
	broker := bus.New(bus.Config{Partitions: 1})
	gw := api.New(api.Config{
		AccessLog: testLogger(),
		Ready: []api.ReadyCheck{
			{Name: "bus", Check: func() error {
				if !broker.Running() {
					return fmt.Errorf("bus down")
				}
				return nil
			}},
		},
	})
	if rec := do(t, gw, "GET", "/healthz", "", ""); rec.Code != 200 {
		t.Fatalf("healthz = %d", rec.Code)
	}
	if rec := do(t, gw, "GET", "/readyz", "", ""); rec.Code != 200 {
		t.Fatalf("readyz = %d (%s)", rec.Code, rec.Body)
	}
	broker.Close()
	if rec := do(t, gw, "GET", "/healthz", "", ""); rec.Code != 200 {
		t.Fatalf("healthz after close = %d (liveness must not depend on the bus)", rec.Code)
	}
	rec := do(t, gw, "GET", "/readyz", "", "")
	if rec.Code != 503 || !strings.Contains(rec.Body.String(), `"ready":false`) {
		t.Fatalf("readyz after close = %d (%s)", rec.Code, rec.Body)
	}
}

// TestPublishRoutesMixedUnits proves one HTTP request carrying many
// units fans out across partitions keyed by unit.
func TestPublishRoutesMixedUnits(t *testing.T) {
	gw, topic, deploy, _, flush := testStack(t)
	var sb strings.Builder
	for u := 0; u < 8; u++ {
		fmt.Fprintf(&sb, "put energy 40 2.5 unit=%d sensor=0\n", u)
	}
	rec := do(t, gw, "POST", "/api/v1/points", sb.String(), "text/plain")
	if rec.Code != 200 {
		t.Fatalf("status = %d (%s)", rec.Code, rec.Body)
	}
	touched := 0
	for p := 0; p < topic.Partitions(); p++ {
		if topic.HighWater(p) > 0 {
			touched++
		}
	}
	if touched < 2 {
		t.Fatalf("8 units landed on %d partitions; want spread", touched)
	}
	flush()
	for u := 0; u < 8; u++ {
		series, err := deploy.TSDs()[0].Query(tsdb.Query{Metric: "energy", Tags: tsdb.EnergyTags(u, 0), Start: 0, End: 100})
		if err != nil || len(series) != 1 {
			t.Fatalf("unit %d: stored = %+v, %v", u, series, err)
		}
	}
}
