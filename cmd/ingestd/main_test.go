package main

import (
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/hbase"
	"repro/internal/proxy"
	"repro/internal/tsdb"
)

func testStack(t *testing.T) (*proxy.Proxy, *tsdb.TSD) {
	t.Helper()
	cluster, err := hbase.NewCluster(hbase.Config{RegionServers: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cluster.Stop)
	deploy, err := tsdb.NewDeployment(cluster, 1, tsdb.TSDConfig{SaltBuckets: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := deploy.CreateTable(); err != nil {
		t.Fatal(err)
	}
	px, err := proxy.New(cluster.Network(), deploy.Addrs(), proxy.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(px.Close)
	return px, deploy.TSDs()[0]
}

func TestPutJSONEndpoint(t *testing.T) {
	px, tsd := testStack(t)
	h := handlePutJSON(px)
	body := `[{"metric":"energy","timestamp":11,"value":3.5,"tags":{"unit":"1","sensor":"2"}}]`
	rec := httptest.NewRecorder()
	h(rec, httptest.NewRequest("POST", "/api/put", strings.NewReader(body)))
	if rec.Code != 204 {
		t.Fatalf("status = %d (%s)", rec.Code, rec.Body)
	}
	px.Flush()
	series, err := tsd.Query(tsdb.Query{Metric: "energy", Tags: tsdb.EnergyTags(1, 2), Start: 0, End: 100})
	if err != nil || len(series) != 1 || series[0].Samples[0].Value != 3.5 {
		t.Fatalf("stored = %+v, %v", series, err)
	}
	// Errors.
	rec = httptest.NewRecorder()
	h(rec, httptest.NewRequest("GET", "/api/put", nil))
	if rec.Code != 405 {
		t.Fatalf("GET status = %d", rec.Code)
	}
	rec = httptest.NewRecorder()
	h(rec, httptest.NewRequest("POST", "/api/put", strings.NewReader("{bad")))
	if rec.Code != 400 {
		t.Fatalf("bad body status = %d", rec.Code)
	}
}

func TestPutLinesEndpoint(t *testing.T) {
	px, tsd := testStack(t)
	h := handlePutLines(px)
	body := "put energy 20 1.25 unit=4 sensor=5\n\nput energy 21 1.5 unit=4 sensor=5\n"
	rec := httptest.NewRecorder()
	h(rec, httptest.NewRequest("POST", "/api/put/line", strings.NewReader(body)))
	if rec.Code != 204 {
		t.Fatalf("status = %d (%s)", rec.Code, rec.Body)
	}
	px.Flush()
	series, err := tsd.Query(tsdb.Query{Metric: "energy", Tags: tsdb.EnergyTags(4, 5), Start: 0, End: 100})
	if err != nil || len(series) != 1 || len(series[0].Samples) != 2 {
		t.Fatalf("stored = %+v, %v", series, err)
	}
	rec = httptest.NewRecorder()
	h(rec, httptest.NewRequest("POST", "/api/put/line", strings.NewReader("bogus line\n")))
	if rec.Code != 400 {
		t.Fatalf("bad line status = %d", rec.Code)
	}
}

func TestQueryEndpoint(t *testing.T) {
	px, tsd := testStack(t)
	_ = px
	if err := tsd.Put([]tsdb.Point{tsdb.EnergyPoint(7, 8, 30, 9.75)}); err != nil {
		t.Fatal(err)
	}
	h := handleQuery(tsd)
	rec := httptest.NewRecorder()
	h(rec, httptest.NewRequest("GET", "/api/query?unit=7&sensor=8&from=0&to=100", nil))
	if rec.Code != 200 {
		t.Fatalf("status = %d (%s)", rec.Code, rec.Body)
	}
	out := rec.Body.String()
	if !strings.Contains(out, "energy{sensor=8,unit=7}") || !strings.Contains(out, "[30,9.75]") {
		t.Fatalf("query body = %s", out)
	}
	// Missing 'to' is a client error.
	rec = httptest.NewRecorder()
	h(rec, httptest.NewRequest("GET", "/api/query?unit=7", nil))
	if rec.Code != 400 {
		t.Fatalf("missing to status = %d", rec.Code)
	}
}
