// Command ingestd runs the ingestion frontend as an HTTP service: the
// buffering reverse proxy over a simulated storage cluster, accepting
// OpenTSDB-compatible writes.
//
//	ingestd -addr :4242 -nodes 4
//
// Endpoints (mirroring OpenTSDB's HTTP API):
//
//	POST /api/put        JSON point or array of points
//	POST /api/put/line   telnet "put …" lines, one per row
//	GET  /api/query      ?metric=&unit=&sensor=&from=&to=
//	GET  /metrics        ingestion counters
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"strconv"
	"strings"

	"repro/internal/hbase"
	"repro/internal/proxy"
	"repro/internal/tsdb"
)

func main() {
	var (
		addr  = flag.String("addr", ":4242", "listen address")
		nodes = flag.Int("nodes", 4, "storage nodes (region servers + TSDs)")
		salt  = flag.Int("salt", -1, "salt buckets (-1: one per node, 0: disable)")
	)
	flag.Parse()
	buckets := *salt
	if buckets < 0 {
		buckets = *nodes
	}
	cluster, err := hbase.NewCluster(hbase.Config{RegionServers: *nodes})
	if err != nil {
		log.Fatalf("ingestd: %v", err)
	}
	defer cluster.Stop()
	deploy, err := tsdb.NewDeployment(cluster, *nodes, tsdb.TSDConfig{SaltBuckets: buckets})
	if err != nil {
		log.Fatalf("ingestd: %v", err)
	}
	if err := deploy.CreateTable(); err != nil {
		log.Fatalf("ingestd: %v", err)
	}
	px, err := proxy.New(cluster.Network(), deploy.Addrs(), proxy.Config{})
	if err != nil {
		log.Fatalf("ingestd: %v", err)
	}
	defer px.Close()

	mux := http.NewServeMux()
	mux.HandleFunc("/api/put", handlePutJSON(px))
	mux.HandleFunc("/api/put/line", handlePutLines(px))
	mux.HandleFunc("/api/query", handleQuery(deploy.TSDs()[0]))
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, "accepted %d\ndelivered %d\ndropped %d\nretries %d\nqueue_depth %d\n",
			px.Accepted.Value(), px.Delivered.Value(), px.Dropped.Value(), px.Retries.Value(), px.QueueDepth.Value())
	})
	log.Printf("ingestd: %d nodes, salt=%d, listening on %s", *nodes, buckets, *addr)
	log.Fatal(http.ListenAndServe(*addr, mux))
}

func handlePutJSON(px *proxy.Proxy) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		body, err := io.ReadAll(io.LimitReader(r.Body, 64<<20))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		points, err := parseJSONBody(body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if err := px.Submit(points); err != nil {
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	}
}

func handlePutLines(px *proxy.Proxy) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		body, err := io.ReadAll(io.LimitReader(r.Body, 64<<20))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		points, err := parseLinesBody(string(body))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if err := px.Submit(points); err != nil {
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	}
}

func handleQuery(t *tsdb.TSD) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query()
		metric := q.Get("metric")
		if metric == "" {
			metric = tsdb.MetricEnergy
		}
		from, _ := strconv.ParseInt(q.Get("from"), 10, 64)
		to, err := strconv.ParseInt(q.Get("to"), 10, 64)
		if err != nil {
			http.Error(w, "to required", http.StatusBadRequest)
			return
		}
		tags := map[string]string{}
		if u := q.Get("unit"); u != "" {
			tags["unit"] = u
		}
		if s := q.Get("sensor"); s != "" {
			tags["sensor"] = s
		}
		series, err := t.Query(tsdb.Query{Metric: metric, Tags: tags, Start: from, End: to})
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, renderSeries(series))
	}
}

// parseJSONBody and parseLinesBody are thin indirections over the
// ingest codecs (kept separate so the handlers stay testable).
func parseJSONBody(body []byte) ([]tsdb.Point, error) { return ingestParseJSON(body) }

func parseLinesBody(body string) ([]tsdb.Point, error) {
	var points []tsdb.Point
	for _, line := range strings.Split(body, "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		p, err := ingestParseLine(line)
		if err != nil {
			return nil, err
		}
		points = append(points, p)
	}
	return points, nil
}

func renderSeries(series []tsdb.Series) string {
	var b strings.Builder
	b.WriteString("[")
	for i, s := range series {
		if i > 0 {
			b.WriteString(",")
		}
		fmt.Fprintf(&b, `{"series":%q,"samples":[`, s.ID())
		for j, sm := range s.Samples {
			if j > 0 {
				b.WriteString(",")
			}
			fmt.Fprintf(&b, `[%d,%g]`, sm.Timestamp, sm.Value)
		}
		b.WriteString("]}")
	}
	b.WriteString("]\n")
	return b.String()
}
