// Command ingestd runs the ingestion frontend as an HTTP service:
// OpenTSDB-compatible writes land on a partitioned commit-log bus
// (keyed by unit) and a consumer group of storage writers drains them
// through the buffering reverse proxy into a simulated storage
// cluster — the paper's producer → Kafka → OpenTSDB edge. Reads go
// through the cached scatter-gather query tier, never a raw TSD scan.
//
//	ingestd -addr :4242 -nodes 4 -partitions 8 -workers 4
//
// The surface is the unified /api/v1 gateway (see internal/api):
//
//	POST /api/v1/points      JSON points or telnet lines (text/plain)
//	GET  /api/v1/query       cached scatter-gather reads
//	GET  /api/v1/metrics     unified telemetry exposition
//	GET  /healthz, /readyz   liveness / readiness
//
// plus the deprecated pre-v1 shims (/api/put, /api/put/line,
// /api/query, /metrics). SIGINT/SIGTERM shut down gracefully:
// the listener stops, then the bus drains into storage, then the
// proxy flushes, then the cluster stops.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/api"
	"repro/internal/bus"
	"repro/internal/hbase"
	"repro/internal/ingest"
	"repro/internal/proxy"
	"repro/internal/query"
	"repro/internal/resilience"
	"repro/internal/telemetry"
	"repro/internal/tsdb"
)

func main() {
	var (
		addr       = flag.String("addr", ":4242", "listen address")
		nodes      = flag.Int("nodes", 4, "storage nodes (region servers + TSDs)")
		salt       = flag.Int("salt", -1, "salt buckets (-1: one per node, 0: disable)")
		partitions = flag.Int("partitions", 8, "commit-log partitions for the ingestion topic")
		workers    = flag.Int("workers", 4, "storage-writer consumers draining the bus into the proxy")
		cache      = flag.Int("cache", 512, "query-tier window cache entries (negative disables)")
		rate       = flag.Float64("rate", 0, "per-client request rate limit (req/s; 0 disables)")
		apiKeys    = flag.String("api-keys", "", "comma-separated X-API-Key values granted their own rate-limit bucket (unlisted keys fall back to per-IP)")
		drainFor   = flag.Duration("drain", 15*time.Second, "graceful shutdown budget")

		sealAfter    = flag.Int64("seal-after", 3600, "fleet-seconds behind the ingest frontier before a closed storage row seals into the compressed block tier")
		compactEvery = flag.Duration("compact-every", 15*time.Second, "storage maintenance cadence: seal closed rows, spill over-budget blocks, enforce retention (0 disables)")
		rawTTL       = flag.Int64("raw-ttl", 0, "drop sealed raw blocks older than this many fleet-seconds (rollups survive; 0 keeps forever)")
		rollupTTL    = flag.Int64("rollup-ttl", 0, "drop rollup buckets older than this many fleet-seconds (0 keeps forever)")
		spillBytes   = flag.Int64("spill-bytes", 64<<20, "resident compressed payload budget before sealed blocks spill to the HDFS tier (negative spills everything)")
	)
	flag.Parse()
	buckets := *salt
	if buckets < 0 {
		buckets = *nodes
	}
	cluster, err := hbase.NewCluster(hbase.Config{RegionServers: *nodes})
	if err != nil {
		log.Fatalf("ingestd: %v", err)
	}
	defer cluster.Stop()
	deploy, err := tsdb.NewDeployment(cluster, *nodes, tsdb.TSDConfig{SaltBuckets: buckets})
	if err != nil {
		log.Fatalf("ingestd: %v", err)
	}
	if err := deploy.CreateTable(); err != nil {
		log.Fatalf("ingestd: %v", err)
	}
	// The compressed sealed tier: closed rows compact into Gorilla
	// blocks whose rollups answer wide dashboard windows; blocks over
	// the resident budget spill to the simulated HDFS tier under the
	// configured retention TTLs.
	compactor := tsdb.NewCompactor(deploy,
		tsdb.BlockStoreConfig{HotBlockBytes: *spillBytes},
		tsdb.CompactorConfig{
			Interval:  *compactEvery,
			SealAfter: *sealAfter,
			Retention: tsdb.RetentionPolicy{RawTTL: *rawTTL, RollupTTL: *rollupTTL},
		})
	if *compactEvery > 0 {
		compactor.Start()
	}
	defer compactor.Stop()
	// One breaker group shared by the proxy's write path and the query
	// tier's read path: both see a single health view per TSD.
	breakers := resilience.NewGroup(resilience.BreakerConfig{})
	px, err := proxy.New(cluster.Network(), deploy.Addrs(), proxy.Config{Breakers: breakers})
	if err != nil {
		log.Fatalf("ingestd: %v", err)
	}
	defer px.Close()

	broker := bus.New(bus.Config{Partitions: *partitions})
	defer broker.Close()
	topic := broker.Topic("energy")
	storage := topic.Group("storage")
	writers := ingest.StartStorageWriters(context.Background(), bus.LocalGroup{Group: storage}, px, *workers)
	defer writers.Stop()

	// Reads fan out across every TSD through the cached window tier —
	// the old direct TSDs()[0].Query path bypassed caching, failover
	// and LTTB bounding entirely.
	engine := query.NewFromDeployment(deploy, query.Config{
		MaxEntries: *cache,
		Timeout:    10 * time.Second,
		Breakers:   breakers,
		HedgeDelay: 25 * time.Millisecond,
		ServeStale: true,
	})

	reg := telemetry.NewRegistry()
	registerMetrics(reg, broker, storage, writers, px, deploy, engine, breakers)
	registerBlockMetrics(reg, compactor)

	gw := api.New(api.Config{
		Publisher: &api.BusPublisher{Topic: bus.LocalTopic{Topic: topic}},
		Query:     engine,
		Registry:  reg,
		Ready: []api.ReadyCheck{
			{Name: "bus", Check: func() error {
				if !broker.Running() {
					return errors.New("bus not accepting publishes")
				}
				return nil
			}},
			{Name: "storage", Check: func() error {
				n := len(deploy.Addrs())
				if n == 0 {
					return errors.New("no TSDs")
				}
				// Some-but-not-all open circuits is degraded (stale
				// serving still answers); all open is down.
				if open := breakers.OpenCount(); open >= n {
					return fmt.Errorf("all %d backend circuits open", n)
				} else if open > 0 {
					return api.Degraded(fmt.Errorf("%d of %d backend circuits open", open, n))
				}
				return nil
			}},
		},
		RatePerSec: *rate,
		APIKeys:    api.SplitKeys(*apiKeys),
	})

	srv := &http.Server{
		Addr:              *addr,
		Handler:           gw,
		ReadHeaderTimeout: 10 * time.Second,
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("ingestd: %d nodes, salt=%d, %d partitions, %d writers, listening on %s",
		*nodes, buckets, *partitions, *workers, *addr)

	select {
	case err := <-errc:
		log.Fatalf("ingestd: serve: %v", err)
	case <-ctx.Done():
	}
	// Graceful shutdown, in dependency order: stop accepting requests,
	// drain the bus into storage, flush the proxy, then tear down.
	log.Printf("ingestd: shutting down (budget %s)", *drainFor)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainFor)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		log.Printf("ingestd: http shutdown: %v", err)
	}
	if err := broker.Drain(shutdownCtx); err != nil {
		log.Printf("ingestd: bus drain: %v", err)
	}
	writers.Stop()
	broker.Close()
	if err := px.Drain(shutdownCtx); err != nil {
		log.Printf("ingestd: proxy drain: %v", err)
	}
	log.Printf("ingestd: shutdown complete")
}

// registerMetrics exposes every tier's counters through the single
// registry behind /api/v1/metrics and the legacy /metrics shim —
// replacing the hand-rolled fmt.Fprintf writer this binary used to
// carry. Names are kept identical for scrape continuity.
func registerMetrics(reg *telemetry.Registry, broker *bus.Broker, storage *bus.Group,
	writers *ingest.StorageWriters, px *proxy.Proxy, deploy *tsdb.Deployment, engine *query.Engine,
	breakers *resilience.Group) {
	reg.RegisterCounter("bus_published", &broker.Published)
	reg.RegisterCounter("bus_polled", &broker.Polled)
	reg.RegisterCounter("bus_rebalances", &broker.Rebalances)
	reg.RegisterFunc("storage_lag", storage.Lag)
	reg.RegisterCounter("writer_delivered", &writers.Delivered)
	reg.RegisterCounter("writer_failures", &writers.Failures)
	reg.RegisterCounter("writer_parks", &writers.Parks)
	reg.RegisterGauge("writer_parked", &writers.Parked)
	reg.RegisterCounter("accepted", &px.Accepted)
	reg.RegisterCounter("delivered", &px.Delivered)
	reg.RegisterCounter("dropped", &px.Dropped)
	reg.RegisterCounter("retries", &px.Retries)
	reg.RegisterGauge("queue_depth", &px.QueueDepth)
	reg.RegisterFunc("tsdb_points_written", deploy.PointsWritten)
	reg.RegisterFunc("tsdb_queries_served", deploy.QueriesServed)
	reg.RegisterCounter("query_cache_hits", &engine.CacheHits)
	reg.RegisterCounter("query_cache_misses", &engine.CacheMisses)
	reg.RegisterCounter("query_subqueries", &engine.SubQueries)
	reg.RegisterCounter("query_failovers", &engine.Failovers)
	reg.RegisterCounter("query_hedged", &engine.Hedged)
	reg.RegisterCounter("query_hedge_wins", &engine.HedgeWins)
	reg.RegisterCounter("query_degraded_serves", &engine.DegradedServes)
	reg.RegisterCounter("breaker_opens", &breakers.Opens)
	reg.RegisterCounter("breaker_half_opens", &breakers.HalfOpens)
	reg.RegisterCounter("breaker_closes", &breakers.Closes)
	reg.RegisterFunc("breakers_open", func() int64 { return int64(breakers.OpenCount()) })
}

// registerBlockMetrics exposes the compressed storage tier's counters,
// matching the names sentinel systems export.
func registerBlockMetrics(reg *telemetry.Registry, c *tsdb.Compactor) {
	bs := c.Store()
	reg.RegisterCounter("blocks_sealed", &bs.BlocksSealed)
	reg.RegisterCounter("samples_sealed", &bs.SamplesSealed)
	reg.RegisterCounter("bytes_sealed", &bs.BytesSealed)
	reg.RegisterCounter("blocks_spilled", &bs.BlocksSpilled)
	reg.RegisterCounter("spill_reads", &bs.SpillReads)
	reg.RegisterCounter("block_scans", &bs.BlockScans)
	reg.RegisterCounter("rollup_serves", &bs.RollupServes)
	reg.RegisterCounter("blocks_expired", &bs.BlocksExpired)
	reg.RegisterCounter("rollups_expired", &bs.RollupsExpired)
	reg.RegisterFunc("blocks_hot_bytes", bs.HotBytes)
	reg.RegisterCounter("compactor_passes", &c.Passes)
	reg.RegisterCounter("compactor_pass_errors", &c.PassErrors)
}
