// Command ingestd runs the ingestion frontend as an HTTP service:
// OpenTSDB-compatible writes land on a partitioned commit-log bus
// (keyed by unit) and a consumer group of storage writers drains them
// through the buffering reverse proxy into a simulated storage
// cluster — the paper's producer → Kafka → OpenTSDB edge.
//
//	ingestd -addr :4242 -nodes 4 -partitions 8 -workers 4
//
// Endpoints (mirroring OpenTSDB's HTTP API):
//
//	POST /api/put        JSON point or array of points
//	POST /api/put/line   telnet "put …" lines, one per row
//	GET  /api/query      ?metric=&unit=&sensor=&from=&to=
//	GET  /metrics        ingestion and bus counters
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/bus"
	"repro/internal/hbase"
	"repro/internal/ingest"
	"repro/internal/proxy"
	"repro/internal/tsdb"
)

func main() {
	var (
		addr       = flag.String("addr", ":4242", "listen address")
		nodes      = flag.Int("nodes", 4, "storage nodes (region servers + TSDs)")
		salt       = flag.Int("salt", -1, "salt buckets (-1: one per node, 0: disable)")
		partitions = flag.Int("partitions", 8, "commit-log partitions for the ingestion topic")
		workers    = flag.Int("workers", 4, "storage-writer consumers draining the bus into the proxy")
	)
	flag.Parse()
	buckets := *salt
	if buckets < 0 {
		buckets = *nodes
	}
	cluster, err := hbase.NewCluster(hbase.Config{RegionServers: *nodes})
	if err != nil {
		log.Fatalf("ingestd: %v", err)
	}
	defer cluster.Stop()
	deploy, err := tsdb.NewDeployment(cluster, *nodes, tsdb.TSDConfig{SaltBuckets: buckets})
	if err != nil {
		log.Fatalf("ingestd: %v", err)
	}
	if err := deploy.CreateTable(); err != nil {
		log.Fatalf("ingestd: %v", err)
	}
	px, err := proxy.New(cluster.Network(), deploy.Addrs(), proxy.Config{})
	if err != nil {
		log.Fatalf("ingestd: %v", err)
	}
	defer px.Close()

	broker := bus.New(bus.Config{Partitions: *partitions})
	defer broker.Close()
	topic := broker.Topic("energy")
	storage := topic.Group("storage")
	writers := ingest.StartStorageWriters(context.Background(), storage, px, *workers)
	defer writers.Stop()

	mux := http.NewServeMux()
	mux.HandleFunc("/api/put", handlePutJSON(topic))
	mux.HandleFunc("/api/put/line", handlePutLines(topic))
	mux.HandleFunc("/api/query", handleQuery(deploy.TSDs()[0]))
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, "bus_published %d\nbus_polled %d\nbus_rebalances %d\nstorage_lag %d\nwriter_delivered %d\nwriter_failures %d\n",
			broker.Published.Value(), broker.Polled.Value(), broker.Rebalances.Value(),
			storage.Lag(), writers.Delivered.Value(), writers.Failures.Value())
		fmt.Fprintf(w, "accepted %d\ndelivered %d\ndropped %d\nretries %d\nqueue_depth %d\n",
			px.Accepted.Value(), px.Delivered.Value(), px.Dropped.Value(), px.Retries.Value(), px.QueueDepth.Value())
	})
	log.Printf("ingestd: %d nodes, salt=%d, %d partitions, %d writers, listening on %s",
		*nodes, buckets, *partitions, *workers, *addr)
	log.Fatal(http.ListenAndServe(*addr, mux))
}

// publishTimeout bounds how long a put request may sit in publish
// backpressure before shedding load with 504 — the bus-era analogue of
// the old fail-fast proxy 503. Without it a stalled storage tier would
// park handler goroutines indefinitely (http.ListenAndServe sets no
// request deadlines of its own).
const publishTimeout = 5 * time.Second

// publish splits the request's points into per-unit batches and
// appends them to the commit log, blocking under backpressure until
// the deadline expires. A multi-unit request is not atomic — like any
// multi-partition produce without transactions, an error can leave an
// earlier unit's batch durably appended while a later one was refused.
// That is safe to retry wholesale: point writes are idempotent (same
// cell, same value), so clients treating 503/504 as "retry the whole
// request" converge on exactly the intended data.
func publish(ctx context.Context, topic *bus.Topic, points []tsdb.Point) error {
	ctx, cancel := context.WithTimeout(ctx, publishTimeout)
	defer cancel()
	for key, batch := range ingest.GroupByUnit(points) {
		if _, err := topic.Publish(ctx, key, batch); err != nil {
			return err
		}
	}
	return nil
}

// publishStatus maps a publish failure to an HTTP status.
func publishStatus(err error) int {
	if errors.Is(err, bus.ErrDraining) || errors.Is(err, bus.ErrClosed) {
		return http.StatusServiceUnavailable
	}
	return http.StatusGatewayTimeout // backpressure outlasted the request deadline
}

func handlePutJSON(topic *bus.Topic) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		body, err := io.ReadAll(io.LimitReader(r.Body, 64<<20))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		points, err := parseJSONBody(body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if err := publish(r.Context(), topic, points); err != nil {
			http.Error(w, err.Error(), publishStatus(err))
			return
		}
		w.WriteHeader(http.StatusNoContent)
	}
}

func handlePutLines(topic *bus.Topic) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		body, err := io.ReadAll(io.LimitReader(r.Body, 64<<20))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		points, err := parseLinesBody(string(body))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if err := publish(r.Context(), topic, points); err != nil {
			http.Error(w, err.Error(), publishStatus(err))
			return
		}
		w.WriteHeader(http.StatusNoContent)
	}
}

func handleQuery(t *tsdb.TSD) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query()
		metric := q.Get("metric")
		if metric == "" {
			metric = tsdb.MetricEnergy
		}
		from, _ := strconv.ParseInt(q.Get("from"), 10, 64)
		to, err := strconv.ParseInt(q.Get("to"), 10, 64)
		if err != nil {
			http.Error(w, "to required", http.StatusBadRequest)
			return
		}
		tags := map[string]string{}
		if u := q.Get("unit"); u != "" {
			tags["unit"] = u
		}
		if s := q.Get("sensor"); s != "" {
			tags["sensor"] = s
		}
		series, err := t.Query(tsdb.Query{Metric: metric, Tags: tags, Start: from, End: to})
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, renderSeries(series))
	}
}

// parseJSONBody and parseLinesBody are thin indirections over the
// ingest codecs (kept separate so the handlers stay testable).
func parseJSONBody(body []byte) ([]tsdb.Point, error) { return ingestParseJSON(body) }

func parseLinesBody(body string) ([]tsdb.Point, error) {
	var points []tsdb.Point
	for _, line := range strings.Split(body, "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		p, err := ingestParseLine(line)
		if err != nil {
			return nil, err
		}
		points = append(points, p)
	}
	return points, nil
}

func renderSeries(series []tsdb.Series) string {
	var b strings.Builder
	b.WriteString("[")
	for i, s := range series {
		if i > 0 {
			b.WriteString(",")
		}
		fmt.Fprintf(&b, `{"series":%q,"samples":[`, s.ID())
		for j, sm := range s.Samples {
			if j > 0 {
				b.WriteString(",")
			}
			fmt.Fprintf(&b, `[%d,%g]`, sm.Timestamp, sm.Value)
		}
		b.WriteString("]}")
	}
	b.WriteString("]\n")
	return b.String()
}
