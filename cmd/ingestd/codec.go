package main

import (
	"repro/internal/ingest"
	"repro/internal/tsdb"
)

// ingestParseJSON re-exports the /api/put JSON codec.
func ingestParseJSON(body []byte) ([]tsdb.Point, error) { return ingest.ParseJSON(body) }

// ingestParseLine re-exports the telnet line codec.
func ingestParseLine(line string) (tsdb.Point, error) { return ingest.ParseLine(line) }
