// Command vizserver boots the full integrated system at laptop scale —
// simulated fleet, storage cluster, FDR detector — runs the live loop
// (ingest → detect → write back) and serves the Figure-3 web
// application.
//
//	vizserver -addr :8080 -units 20 -sensors 60
//
// Then open http://localhost:8080/ for the fleet overview; click a
// machine for sparklines with red anomaly flags; click a sensor for
// the drill-down.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"sync/atomic"
	"time"

	"repro/internal/query"
	"repro/internal/viz"
	"repro/sentinel"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		units       = flag.Int("units", 20, "simulated units")
		sensors     = flag.Int("sensors", 60, "sensors per unit")
		nodes       = flag.Int("nodes", 4, "storage nodes")
		train       = flag.Int("train", 120, "training window (steps)")
		onset       = flag.Int64("onset", 150, "fault onset step")
		tick        = flag.Duration("tick", 2*time.Second, "live-loop interval (one fleet second per tick)")
		partitions  = flag.Int("partitions", 0, "commit-log partitions (0: one per unit, capped at 16)")
		workers     = flag.Int("workers", 2, "streaming detector workers (0: detect synchronously per tick)")
		cache       = flag.Int("cache", 512, "query-tier window cache entries (negative disables)")
		cacheBucket = flag.Int64("cachewindow", 5, "cache window bucketing in seconds (0: exact windows)")
		maxPoints   = flag.Int("maxpoints", 400, "max rendered samples per series (LTTB; 0: unbounded)")
		fanout      = flag.Int("fanout", 0, "TSDs the query tier fans out over (0: all)")
		partialOK   = flag.Bool("partial", false, "serve partial results when a storage shard is down")
	)
	flag.Parse()

	nparts := *partitions
	if nparts <= 0 {
		nparts = *units
		if nparts > 16 {
			nparts = 16
		}
	}
	sys, err := sentinel.New(sentinel.Config{
		StorageNodes:   *nodes,
		Units:          *units,
		SensorsPerUnit: *sensors,
		FaultFraction:  0.4,
		FaultOnset:     *onset,
		Partitions:     nparts,
	})
	if err != nil {
		log.Fatalf("vizserver: %v", err)
	}
	defer sys.Close()

	log.Printf("ingesting %d training steps…", *train)
	if _, err := sys.IngestRange(0, *train); err != nil {
		log.Fatalf("vizserver: ingest: %v", err)
	}
	log.Printf("training %d unit models…", *units)
	if err := sys.TrainFromTSDB(0, *train, true); err != nil {
		log.Fatalf("vizserver: train: %v", err)
	}

	// Live loop: every tick advances fleet time one second and ingests
	// the snapshot onto the commit log. With detector workers the flags
	// come back asynchronously — the pool's consumer group evaluates
	// each published batch and writes flags as it goes; with -workers=0
	// detection runs synchronously per tick (the pre-bus behaviour).
	if *workers > 0 {
		pool := sys.StartDetectors(*workers)
		log.Printf("streaming detection: %d workers over %d partitions", *workers, nparts)
		defer pool.Stop()
	}
	var now atomic.Int64
	now.Store(int64(*train))
	go func() {
		ticker := time.NewTicker(*tick)
		defer ticker.Stop()
		for range ticker.C {
			t := now.Load()
			if _, err := sys.IngestRange(t, 1); err != nil {
				log.Printf("vizserver: ingest tick %d: %v", t, err)
				continue
			}
			if *workers <= 0 {
				if _, err := sys.Detect(t, 1); err != nil {
					log.Printf("vizserver: detect tick %d: %v", t, err)
				}
			}
			now.Add(1)
		}
	}()

	// The read path: scatter-gather across the TSD tier with a
	// watermark-invalidated window cache and LTTB-bounded payloads.
	addrs := sys.TSDB.Addrs()
	if *fanout > 0 && *fanout < len(addrs) {
		addrs = addrs[:*fanout]
	}
	partial := query.PartialFail
	if *partialOK {
		partial = query.PartialServe
	}
	engine := query.New(sys.Cluster.Network(), addrs, sys.TSDB.Watermarks(), query.Config{
		MaxEntries:   *cache,
		WindowBucket: *cacheBucket,
		Partial:      partial,
		Timeout:      10 * time.Second,
	})
	backend := &viz.Backend{
		Q:         engine,
		Units:     *units,
		Sensors:   *sensors,
		MaxPoints: *maxPoints,
	}
	handler := viz.NewServer(backend, now.Load)
	fmt.Printf("vizserver: fleet overview at http://localhost%s/ (faults begin at t=%d)\n", *addr, *onset)
	log.Fatal(http.ListenAndServe(*addr, handler))
}
