// Command vizserver boots the full integrated system at laptop scale —
// simulated fleet, storage cluster, FDR detector — runs the live loop
// (ingest → detect → write back) and serves the Figure-3 web
// application behind the unified /api/v1 gateway.
//
//	vizserver -addr :8080 -units 20 -sensors 60
//
// Open http://localhost:8080/ for the fleet overview; click a machine
// for sparklines with red anomaly flags; click a sensor for the
// drill-down. Programmatic access goes through /api/v1/* (fleet
// pagination, raw queries, the SSE anomaly stream at
// /api/v1/anomalies/stream) or the sentinel/client SDK; the pre-v1
// /api/* paths still serve as deprecated shims. SIGINT/SIGTERM shuts
// down gracefully: listener, live loop, SSE tail, detector pool, then
// the system tiers in dependency order.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os/signal"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/api"
	"repro/internal/bus"
	"repro/internal/query"
	"repro/internal/telemetry"
	"repro/internal/viz"
	"repro/sentinel"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		units       = flag.Int("units", 20, "simulated units")
		sensors     = flag.Int("sensors", 60, "sensors per unit")
		nodes       = flag.Int("nodes", 4, "storage nodes")
		train       = flag.Int("train", 120, "training window (steps)")
		onset       = flag.Int64("onset", 150, "fault onset step")
		tick        = flag.Duration("tick", 2*time.Second, "live-loop interval (one fleet second per tick)")
		partitions  = flag.Int("partitions", 0, "commit-log partitions (0: one per unit, capped at 16)")
		workers     = flag.Int("workers", 2, "streaming detector workers (0: detect synchronously per tick)")
		cache       = flag.Int("cache", 512, "query-tier window cache entries (negative disables)")
		cacheBucket = flag.Int64("cachewindow", 5, "cache window bucketing in seconds (0: exact windows)")
		maxPoints   = flag.Int("maxpoints", 400, "max rendered samples per series (LTTB; 0: unbounded)")
		fanout      = flag.Int("fanout", 0, "TSDs the query tier fans out over (0: all)")
		partialOK   = flag.Bool("partial", false, "serve partial results when a storage shard is down")
		rate        = flag.Float64("rate", 0, "per-client request rate limit (req/s; 0 disables)")
		apiKeys     = flag.String("api-keys", "", "comma-separated X-API-Key values granted their own rate-limit bucket (unlisted keys fall back to per-IP)")
		drainFor    = flag.Duration("drain", 15*time.Second, "graceful shutdown budget")
	)
	flag.Parse()

	nparts := *partitions
	if nparts <= 0 {
		nparts = *units
		if nparts > 16 {
			nparts = 16
		}
	}
	sys, err := sentinel.New(sentinel.Config{
		StorageNodes:   *nodes,
		Units:          *units,
		SensorsPerUnit: *sensors,
		FaultFraction:  0.4,
		FaultOnset:     *onset,
		Partitions:     nparts,
	})
	if err != nil {
		log.Fatalf("vizserver: %v", err)
	}
	defer sys.Close()

	log.Printf("ingesting %d training steps…", *train)
	if _, err := sys.IngestRange(0, *train); err != nil {
		log.Fatalf("vizserver: ingest: %v", err)
	}
	log.Printf("training %d unit models…", *units)
	if err := sys.TrainFromTSDB(0, *train, true); err != nil {
		log.Fatalf("vizserver: train: %v", err)
	}

	// Live loop: every tick advances fleet time one second and ingests
	// the snapshot onto the commit log. With detector workers the flags
	// come back asynchronously — the pool's consumer group evaluates
	// each published batch, writes flags to storage and publishes them
	// onto the anomaly feed (the SSE stream's source); with -workers=0
	// detection runs synchronously per tick (the pre-bus behaviour).
	var pool *sentinel.DetectorPool
	if *workers > 0 {
		pool = sys.StartDetectors(*workers)
		log.Printf("streaming detection: %d workers over %d partitions", *workers, nparts)
	}
	var now atomic.Int64
	now.Store(int64(*train))
	loopCtx, stopLoop := context.WithCancel(context.Background())
	loopDone := make(chan struct{})
	go func() {
		defer close(loopDone)
		ticker := time.NewTicker(*tick)
		defer ticker.Stop()
		for {
			select {
			case <-loopCtx.Done():
				return
			case <-ticker.C:
			}
			t := now.Load()
			if _, err := sys.IngestRange(t, 1); err != nil {
				log.Printf("vizserver: ingest tick %d: %v", t, err)
				continue
			}
			if *workers <= 0 {
				if _, err := sys.Detect(t, 1); err != nil {
					log.Printf("vizserver: detect tick %d: %v", t, err)
				}
			}
			now.Add(1)
		}
	}()

	// The read path: scatter-gather across the TSD tier with a
	// watermark-invalidated window cache and LTTB-bounded payloads.
	addrs := sys.TSDB.Addrs()
	if *fanout > 0 && *fanout < len(addrs) {
		addrs = addrs[:*fanout]
	}
	partial := query.PartialFail
	if *partialOK {
		partial = query.PartialServe
	}
	engine := query.New(sys.Cluster.Network(), addrs, sys.TSDB.Watermarks(), query.Config{
		MaxEntries:   *cache,
		WindowBucket: *cacheBucket,
		Partial:      partial,
		Timeout:      10 * time.Second,
	})
	backend := &viz.Backend{
		Q:         engine,
		Units:     *units,
		Sensors:   *sensors,
		MaxPoints: *maxPoints,
	}
	tail := sys.NewAnomalyTail()
	reg := telemetry.NewRegistry()
	sys.RegisterMetrics(reg)
	reg.RegisterCounter("query_cache_hits", &engine.CacheHits)
	reg.RegisterCounter("query_cache_misses", &engine.CacheMisses)
	reg.RegisterCounter("stream_events", &tail.Events)
	reg.RegisterCounter("stream_dropped", &tail.Dropped)
	gw := api.New(api.Config{
		Backend:    backend,
		Publisher:  &api.BusPublisher{Topic: bus.LocalTopic{Topic: sys.Topic()}},
		Query:      engine,
		Tail:       tail,
		Registry:   reg,
		HTML:       viz.NewServer(backend, now.Load),
		Ready:      sys.ReadyChecks(),
		Detectors:  sys.DetectorStatus,
		Now:        now.Load,
		RatePerSec: *rate,
		APIKeys:    api.SplitKeys(*apiKeys),
	})

	srv := &http.Server{
		Addr:              *addr,
		Handler:           gw,
		ReadHeaderTimeout: 10 * time.Second,
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Printf("vizserver: fleet overview at http://localhost%s/ (faults begin at t=%d)\n", *addr, *onset)

	select {
	case err := <-errc:
		log.Fatalf("vizserver: serve: %v", err)
	case <-ctx.Done():
	}
	// Graceful shutdown in dependency order: stop the live loop (no
	// new publishes), end SSE streams, stop the detector pool, shut
	// the listener, then let sys.Close drain writers → bus → proxy →
	// cluster.
	log.Printf("vizserver: shutting down (budget %s)", *drainFor)
	stopLoop()
	<-loopDone
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainFor)
	defer cancel()
	tail.Close()
	if pool != nil {
		pool.Stop()
	}
	if err := srv.Shutdown(shutdownCtx); err != nil {
		log.Printf("vizserver: http shutdown: %v", err)
	}
	log.Printf("vizserver: shutdown complete")
}
