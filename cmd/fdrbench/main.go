// Command fdrbench regenerates the paper's §IV results:
//
//	fdrbench -sweep       # false-alarm control across corrections & sensor counts
//	fdrbench -throughput  # online evaluation rate (paper: 939k samples/s)
//	fdrbench -train       # offline training: serial vs concurrent (ongoing-work E7)
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/dataflow"
	"repro/internal/fdr"
	"repro/internal/simdata"
	"repro/internal/stats"
)

func main() {
	var (
		sweep      = flag.Bool("sweep", false, "false-alarm sweep across procedures")
		throughput = flag.Bool("throughput", false, "online evaluation throughput")
		train      = flag.Bool("train", false, "offline training scaling")
		trials     = flag.Int("trials", 400, "Monte-Carlo trials per cell (sweep)")
		sensors    = flag.Int("sensors", 1000, "sensors per unit")
		units      = flag.Int("units", 100, "fleet units (train)")
		seconds    = flag.Float64("seconds", 3.0, "measurement window (throughput)")
	)
	flag.Parse()
	switch {
	case *sweep:
		runSweep(*trials)
	case *throughput:
		runThroughput(*sensors, *seconds)
	case *train:
		runTraining(*units, *sensors)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// runSweep reproduces the §IV false-alarm arithmetic empirically: for
// m sensors at α=0.05, uncorrected testing trips FWER = 1-(1-α)^m
// (40% at m=10), Bonferroni is over-conservative, and BH controls the
// expected false-discovery proportion while keeping power.
func runSweep(trials int) {
	const alpha = 0.05
	rng := rand.New(rand.NewSource(1))
	fmt.Println("§IV: false alarms under multiple testing (α = q = 0.05)")
	fmt.Println("20% of sensors carry a 4σ fault; the rest are healthy.")
	fmt.Printf("\n%-8s %-22s %8s %8s %8s   closed-form FWER(uncorrected)\n", "sensors", "procedure", "FWER", "FDR", "power")
	for _, m := range []int{1, 10, 100, 1000} {
		m1 := m / 5
		truth := make([]bool, m)
		for i := 0; i < m1; i++ {
			truth[i] = true
		}
		for _, proc := range []fdr.Procedure{fdr.Uncorrected, fdr.Bonferroni, fdr.Holm, fdr.BH, fdr.BY} {
			var met fdr.Metrics
			for trial := 0; trial < trials; trial++ {
				pvals := make([]float64, m)
				for i := range pvals {
					mu := 0.0
					if truth[i] {
						mu = 4
					}
					pvals[i] = stats.ZTestPoint(rng.NormFloat64()+mu, 0, 1, stats.TwoSided).PValue
				}
				res, err := fdr.Apply(proc, pvals, alpha)
				if err != nil {
					log.Fatalf("fdrbench: %v", err)
				}
				met.Add(fdr.Score(res.Rejected, truth))
			}
			closed := ""
			if proc == fdr.Uncorrected {
				closed = fmt.Sprintf("1-(1-α)^%d = %.3f", m-m1, stats.FWER(alpha, m-m1))
			}
			fmt.Printf("%-8d %-22s %8.3f %8.3f %8.3f   %s\n", m, proc, met.FWER(), met.FDR(), met.Power(), closed)
		}
		fmt.Println()
	}
	fmt.Println("paper reference: α=0.05 ⇒ 5% FWER at 1 sensor, 40% at 10 sensors; FDR controls the error proportion instead.")
}

// runThroughput measures the online evaluator's samples/second — the
// §IV-A "939,000 sensor samples per second" figure. Evaluation is one
// B×d · d×K matrix multiplication per batch plus element-wise work.
func runThroughput(sensors int, seconds float64) {
	eng := dataflow.NewEngine(0)
	defer eng.Close()
	fleet := simdata.NewFleet(simdata.Config{Units: 1, SensorsPerUnit: sensors, Seed: 9, FaultFraction: 0})
	trainer := core.NewTrainer(eng, core.TrainerConfig{})
	model, err := trainer.TrainUnit(0, fleet.UnitWindow(0, 0, 512))
	if err != nil {
		log.Fatalf("fdrbench: %v", err)
	}
	ev, err := core.NewEvaluator(model, core.EvaluatorConfig{Procedure: fdr.BH, Level: 0.05})
	if err != nil {
		log.Fatalf("fdrbench: %v", err)
	}
	const batch = 64
	xs := fleet.UnitWindow(0, 1000, batch)
	ts := make([]int64, batch)
	for i := range ts {
		ts[i] = int64(1000 + i)
	}
	start := time.Now()
	var samples int64
	for time.Since(start).Seconds() < seconds {
		if _, err := ev.EvaluateBatch(xs, ts); err != nil {
			log.Fatalf("fdrbench: %v", err)
		}
		samples += int64(batch * sensors)
	}
	rate := float64(samples) / time.Since(start).Seconds()
	fmt.Printf("§IV-A online evaluation throughput: %d sensors/unit, K=%d retained components\n", sensors, model.K)
	fmt.Printf("  %0.f samples/s (paper: 939,000 samples/s on their cluster)\n", rate)
}

// runTraining contrasts the paper's one-unit-at-a-time batch training
// with the stated ongoing work: using the engine's concurrency to
// train units in parallel.
func runTraining(units, sensors int) {
	eng := dataflow.NewEngine(0)
	defer eng.Close()
	fleet := simdata.NewFleet(simdata.Config{Units: units, SensorsPerUnit: sensors, Seed: 10, FaultOnset: 1 << 40})
	src := core.WindowFunc(func(unit int) ([][]float64, error) {
		return fleet.UnitWindow(unit, 0, 256), nil
	})
	trainer := core.NewTrainer(eng, core.TrainerConfig{})
	ids := make([]int, units)
	for i := range ids {
		ids[i] = i
	}
	fmt.Printf("§IV-A offline training: %d units × %d sensors, covariance+SVD per unit\n", units, sensors)
	for _, concurrent := range []bool{false, true} {
		start := time.Now()
		if _, err := trainer.TrainFleet(ids, src, nil, concurrent); err != nil {
			log.Fatalf("fdrbench: %v", err)
		}
		mode := "serial (paper's current system)"
		if concurrent {
			mode = "concurrent (paper's ongoing work)"
		}
		fmt.Printf("  %-36s %8.2fs\n", mode, time.Since(start).Seconds())
	}
}
