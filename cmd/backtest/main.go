// Command backtest scores every registered detector family against
// the injected-fault scenarios of internal/backtest and writes the
// per-detector per-scenario precision / recall / detection-latency
// table as JSON (BENCH_detectors.json in CI).
//
// Usage:
//
//	backtest [-out BENCH_detectors.json] [-seed 42] [-detectors cusum,mgd]
//	         [-gate spike:0.30]
//
// The -gate flag enforces a minimum recall floor on one scenario and
// exits nonzero when any scored detector misses it, which is how CI
// keeps the detector tier honest.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/backtest"
	"repro/internal/mllib"

	_ "repro/internal/core" // registers the "mgd" family
)

func main() {
	out := flag.String("out", "BENCH_detectors.json", "output JSON path (\"-\" for stdout)")
	seed := flag.Uint64("seed", 42, "master seed for fleets and detector construction")
	detectors := flag.String("detectors", "", "comma-separated families to score (default: all registered)")
	gate := flag.String("gate", "", "minimum recall floor as scenario:recall, e.g. spike:0.30")
	workers := flag.Int("workers", 4, "dataflow workers for model training")
	flag.Parse()

	cfg := backtest.Config{Seed: *seed, Workers: *workers}
	if *detectors != "" {
		for _, d := range strings.Split(*detectors, ",") {
			if d = strings.TrimSpace(d); d != "" {
				cfg.Detectors = append(cfg.Detectors, d)
			}
		}
	}

	scenarios := backtest.DefaultScenarios(*seed)
	results, err := backtest.Run(cfg, scenarios)
	if err != nil {
		fmt.Fprintln(os.Stderr, "backtest:", err)
		os.Exit(1)
	}

	report := struct {
		Seed      uint64            `json:"seed"`
		Scenarios []string          `json:"scenarios"`
		Detectors []string          `json:"detectors"`
		Results   []backtest.Result `json:"results"`
	}{Seed: *seed, Results: results}
	for _, sc := range scenarios {
		report.Scenarios = append(report.Scenarios, sc.Name)
	}
	if len(cfg.Detectors) > 0 {
		report.Detectors = cfg.Detectors
	} else {
		report.Detectors = mllib.Registered()
	}

	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "backtest: marshal:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if *out == "-" {
		os.Stdout.Write(buf)
	} else {
		if err := os.WriteFile(*out, buf, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "backtest:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d results)\n", *out, len(results))
	}

	for _, r := range results {
		fmt.Printf("%-10s %-11s precision=%.3f recall=%.3f latency=%.1f units=%d/%d\n",
			r.Detector, r.Scenario, r.Precision, r.Recall, r.MeanLatencySteps, r.DetectedUnits, r.FaultyUnits)
	}

	if *gate != "" {
		g, err := parseGate(*gate)
		if err != nil {
			fmt.Fprintln(os.Stderr, "backtest:", err)
			os.Exit(2)
		}
		if bad := backtest.CheckGate(results, g); len(bad) > 0 {
			for _, r := range bad {
				fmt.Fprintf(os.Stderr, "backtest: GATE FAIL %s on %s: recall %.3f < %.3f\n",
					r.Detector, r.Scenario, r.Recall, g.MinRecall)
			}
			os.Exit(1)
		}
		fmt.Printf("gate %s passed\n", *gate)
	}
}

func parseGate(s string) (backtest.Gate, error) {
	scen, val, ok := strings.Cut(s, ":")
	if !ok {
		return backtest.Gate{}, fmt.Errorf("gate %q: want scenario:recall", s)
	}
	f, err := strconv.ParseFloat(val, 64)
	if err != nil {
		return backtest.Gate{}, fmt.Errorf("gate %q: %w", s, err)
	}
	return backtest.Gate{Scenario: scen, MinRecall: f}, nil
}
