// Command clustersmoke is the gating multi-process failover check: it
// boots a four-process cluster from a sentineld binary (one broker,
// two stores, one detect+gateway node hosting coordination), ingests
// through the gateway with the Go SDK, SIGKILLs the broker mid-stream,
// keeps ingesting, and then proves:
//
//   - zero acked-sample loss: every sample the gateway acked with a
//     2xx is read back through the fanned-out query tier (publishes
//     replicate synchronously to every bus replica before acking, so
//     a promoted store serves the full acked prefix);
//   - failover visibility: /api/v1/cluster shows a surviving node
//     leading the partition group with a recorded promotion;
//   - the detection path: an injected level shift arrives on the SSE
//     anomaly stream.
//
// Exit status 0 on success; non-zero with diagnostics otherwise. Run
// via `make cluster-smoke`.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"syscall"
	"time"

	v1 "repro/internal/api/v1"
	"repro/sentinel/client"
)

const (
	units   = 4
	sensors = 3
	warmup  = 20
	// Baseline steps before the level shift; the broker dies a third
	// of the way in.
	baseline = 40
	spikes   = 6
)

type proc struct {
	name string
	cmd  *exec.Cmd
}

func main() {
	bin := flag.String("bin", "bin/sentineld", "sentineld binary to launch")
	timeout := flag.Duration("timeout", 3*time.Minute, "overall deadline")
	flag.Parse()
	log.SetPrefix("clustersmoke: ")
	log.SetFlags(log.Ltime)

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	ports, err := freePorts(6)
	if err != nil {
		log.Fatal(err)
	}
	rpc := map[string]string{
		"broker":  fmt.Sprintf("127.0.0.1:%d", ports[0]),
		"store-1": fmt.Sprintf("127.0.0.1:%d", ports[1]),
		"store-2": fmt.Sprintf("127.0.0.1:%d", ports[2]),
		"dg":      fmt.Sprintf("127.0.0.1:%d", ports[3]),
	}
	brokerHTTP := fmt.Sprintf("127.0.0.1:%d", ports[4])
	gatewayHTTP := fmt.Sprintf("127.0.0.1:%d", ports[5])
	peers := fmt.Sprintf("broker=%s,store-1=%s,store-2=%s,dg=%s",
		rpc["broker"], rpc["store-1"], rpc["store-2"], rpc["dg"])

	common := []string{
		"-peers", peers,
		"-partitions", "4",
		"-units", strconv.Itoa(units),
		"-sensors", strconv.Itoa(sensors),
		"-stores", "2",
	}
	procs := make(map[string]*proc)
	spawn := func(name string, args ...string) *proc {
		cmd := exec.Command(*bin, append(args, common...)...)
		cmd.Stdout = prefixed(name)
		cmd.Stderr = prefixed(name)
		if err := cmd.Start(); err != nil {
			log.Fatalf("start %s: %v", name, err)
		}
		p := &proc{name: name, cmd: cmd}
		procs[name] = p
		return p
	}
	defer func() {
		for _, p := range procs {
			_ = p.cmd.Process.Signal(syscall.SIGTERM)
		}
		for _, p := range procs {
			_ = p.cmd.Wait()
		}
	}()

	// Boot order: the gateway first (it hosts the coordination service
	// everyone else's boot blocks on; it waits for the stores), then
	// the broker, which must win the initial bus election before the
	// stores join it — that makes the kill below deterministically hit
	// the leader with store followers behind it.
	spawn("dg", "-name", "dg", "-role", "detect,gateway",
		"-listen", rpc["dg"], "-http", gatewayHTTP,
		"-warmup", strconv.Itoa(warmup))
	broker := spawn("broker", "-name", "broker", "-role", "broker",
		"-listen", rpc["broker"], "-http", brokerHTTP, "-zk-node", "dg")
	if err := waitFor(ctx, "broker leads the bus election", func() bool {
		body, err := httpGet("http://" + brokerHTTP + "/api/v1/metrics")
		return err == nil && strings.Contains(body, "cluster_partition_groups_led 1")
	}); err != nil {
		log.Fatal(err)
	}
	spawn("store-1", "-name", "store-1", "-role", "store",
		"-listen", rpc["store-1"], "-zk-node", "dg")
	spawn("store-2", "-name", "store-2", "-role", "store",
		"-listen", rpc["store-2"], "-zk-node", "dg")

	c, err := client.New("http://" + gatewayHTTP)
	if err != nil {
		log.Fatal(err)
	}
	if err := waitFor(ctx, "gateway ready", func() bool {
		r, err := c.Ready(ctx)
		return err == nil && r.Ready
	}); err != nil {
		log.Fatal(err)
	}
	log.Printf("cluster up: gateway on %s", gatewayHTTP)

	// Tail the anomaly stream before any flag can fire.
	stream, err := c.StreamAnomalies(ctx)
	if err != nil {
		log.Fatal(err)
	}
	defer stream.Close()
	events := make(chan v1.AnomalyEvent, 1)
	go func() {
		if ev, err := stream.Next(); err == nil {
			events <- ev
		}
	}()

	// Ingest, killing the broker a third of the way in. Only samples
	// acked with a 2xx count; each step retries until acked, so the
	// acked set is exactly the full grid.
	acked := 0
	killAt := baseline / 3
	for step := 0; step < baseline+spikes; step++ {
		if step == killAt {
			log.Printf("SIGKILL broker (pid %d) at step %d", broker.cmd.Process.Pid, step)
			if err := broker.cmd.Process.Kill(); err != nil {
				log.Fatalf("kill broker: %v", err)
			}
			_ = broker.cmd.Wait()
			delete(procs, "broker")
		}
		val := func(u, s int) float64 { return float64(10*u + s) }
		if step >= baseline {
			val = func(u, s int) float64 { return 1e6 }
		}
		n, err := putStep(ctx, c, int64(step), val)
		if err != nil {
			log.Fatalf("step %d never acked: %v", step, err)
		}
		acked += n
	}
	log.Printf("acked %d samples across %d steps (broker killed mid-ingest)", acked, baseline+spikes)

	// Zero acked loss: the fanned-out read tier must return every
	// acked sample exactly once (duplicates collapse by timestamp).
	if err := waitFor(ctx, "all acked samples readable", func() bool {
		series, err := c.Query(ctx, client.QueryParams{
			Metric: "energy", From: 0, To: int64(baseline + spikes - 1),
		})
		if err != nil {
			return false
		}
		got := 0
		for _, s := range series {
			got += len(s.Samples)
		}
		return got == acked
	}); err != nil {
		log.Fatalf("acked-sample loss: %v", err)
	}
	log.Printf("zero acked-sample loss: %d/%d samples read back", acked, acked)

	// Failover surfaced on the cluster map: a surviving node leads the
	// partition group and records a promotion.
	if err := waitFor(ctx, "promoted leader on /api/v1/cluster", func() bool {
		cm, err := c.Cluster(ctx)
		if err != nil {
			return false
		}
		for _, n := range cm.Nodes {
			if n.Name != "broker" && len(n.PartitionGroupsLed) > 0 && n.Promotions > 0 {
				return true
			}
		}
		return false
	}); err != nil {
		log.Fatal(err)
	}

	// The level shift must have reached the SSE stream.
	select {
	case ev := <-events:
		log.Printf("anomaly event: unit %d sensor %d z %.1f", ev.Unit, ev.Sensor, ev.Z)
	case <-time.After(60 * time.Second):
		log.Fatal("no anomaly event on the SSE stream")
	case <-ctx.Done():
		log.Fatal(ctx.Err())
	}

	fmt.Println("CLUSTER SMOKE PASS")
}

// putStep writes one fleet-wide time step, retrying transient errors
// (the broker-kill handover window) until the gateway acks it.
func putStep(ctx context.Context, c *client.Client, step int64, val func(u, s int) float64) (int, error) {
	pts := make([]v1.Point, 0, units*sensors)
	for u := 0; u < units; u++ {
		for s := 0; s < sensors; s++ {
			pts = append(pts, v1.Point{
				Metric:    "energy",
				Timestamp: step,
				Value:     val(u, s),
				Tags:      map[string]string{"unit": strconv.Itoa(u), "sensor": strconv.Itoa(s)},
			})
		}
	}
	var lastErr error
	for i := 0; i < 600; i++ {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		n, err := c.PutPoints(ctx, pts)
		if err == nil {
			return n, nil
		}
		lastErr = err
		time.Sleep(100 * time.Millisecond)
	}
	return 0, lastErr
}

func waitFor(ctx context.Context, what string, ok func() bool) error {
	for start := time.Now(); ; {
		if ok() {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("timed out waiting for %s after %s", what, time.Since(start).Round(time.Second))
		case <-time.After(250 * time.Millisecond):
		}
	}
}

func freePorts(n int) ([]int, error) {
	ports := make([]int, 0, n)
	liss := make([]net.Listener, 0, n)
	defer func() {
		for _, l := range liss {
			l.Close()
		}
	}()
	for i := 0; i < n; i++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		liss = append(liss, l)
		ports = append(ports, l.Addr().(*net.TCPAddr).Port)
	}
	return ports, nil
}

func httpGet(url string) (string, error) {
	resp, err := http.Get(url)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	return string(b), err
}

// prefixed returns a writer tagging each line with the process name.
func prefixed(name string) io.Writer {
	return &linePrefixer{prefix: "[" + name + "] "}
}

type linePrefixer struct {
	prefix string
	buf    []byte
}

func (w *linePrefixer) Write(p []byte) (int, error) {
	w.buf = append(w.buf, p...)
	for {
		i := strings.IndexByte(string(w.buf), '\n')
		if i < 0 {
			break
		}
		fmt.Fprintf(os.Stderr, "%s%s\n", w.prefix, w.buf[:i])
		w.buf = w.buf[i+1:]
	}
	return len(p), nil
}
