// Command benchjson converts `go test -bench -benchmem` output on
// stdin into the repo's BENCH_*.json perf-trajectory format: a JSON
// object mapping each benchmark name to its ns/op, B/op, allocs/op and
// every custom metric it reported (samples/s, GFLOPS, empirical-FDR,
// ...), plus a small meta block identifying the host. CI and `make
// bench-json` pipe the evaluation benchmarks through it so allocation
// and throughput regressions are visible as a diff on a committed file.
//
//	go test -run '^$' -bench 'OnlineEval' -benchmem . | benchjson -out BENCH_evaluation.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/benchparse"
)

// Entry is one benchmark's parsed result line.
type Entry struct {
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op"`
	AllocsPerOp float64            `json:"allocs_per_op"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Output is the whole BENCH_*.json document.
type Output struct {
	Meta       map[string]string `json:"meta,omitempty"`
	Benchmarks map[string]Entry  `json:"benchmarks"`
}

func main() {
	out := flag.String("out", "", "output file (default stdout)")
	flag.Parse()

	doc := Output{
		Meta:       map[string]string{},
		Benchmarks: map[string]Entry{},
	}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		for _, key := range []string{"goos", "goarch", "cpu"} {
			if v, ok := strings.CutPrefix(line, key+": "); ok {
				doc.Meta[key] = v
			}
		}
		r, ok := benchparse.Parse(line)
		if !ok {
			continue
		}
		doc.Benchmarks[r.Name] = Entry{
			Iterations:  r.Iterations,
			NsPerOp:     r.NsPerOp,
			BytesPerOp:  r.BytesPerOp,
			AllocsPerOp: r.AllocsPerOp,
			Metrics:     r.Metrics,
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: read stdin:", err)
		os.Exit(1)
	}
	if len(doc.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}

	data, err := marshalSorted(doc)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	names := make([]string, 0, len(doc.Benchmarks))
	for n := range doc.Benchmarks {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s (%s)\n", len(names), *out, strings.Join(names, ", "))
}

// marshalSorted renders the document with stable key order (Go maps
// marshal sorted already) and a trailing newline for clean diffs.
func marshalSorted(doc Output) ([]byte, error) {
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}
