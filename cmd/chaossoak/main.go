// Command chaossoak proves the resilience layer end to end: it boots a
// full System, keeps ingest, detection and queries running, and drives
// seeded fault scenarios through the injection fabric — a TSD killed
// and restarted mid-ingest, a 10% RPC error burst, a stalled proxy
// submission edge, and a full storage blackout that trips every
// circuit breaker — then verifies the invariants the layer promises:
//
//   - zero acknowledged-sample loss: every point acked onto the commit
//     log is queryable from storage once the faults clear;
//   - bounded recovery: the storage group drains and every breaker
//     re-closes within the recovery budget after each scenario;
//   - query availability throughout: a reader hammering a warmed
//     window never sees an error — at worst a stale, degraded-marked
//     answer during the blackout;
//   - the breakers actually cycle closed → open → half-open → closed.
//
// The verdict and the counters land in BENCH_chaos.json (CI runs this
// under -race via `make chaos`). Exit status 0 means every invariant
// held.
//
// Usage:
//
//	chaossoak [-seed 42] [-duration 20s] [-out BENCH_chaos.json]
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http/httptest"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/admission"
	v1 "repro/internal/api/v1"
	"repro/internal/bus"
	"repro/internal/faultinject"
	"repro/internal/ingest"
	"repro/internal/query"
	"repro/internal/resilience"
	"repro/internal/tsdb"
	"repro/sentinel"
	"repro/sentinel/client"
)

// report is the BENCH_chaos.json schema.
type report struct {
	Seed     uint64   `json:"seed"`
	Duration string   `json:"duration"`
	Phases   []string `json:"phases"`

	PublishedSamples int64 `json:"published_samples"`
	PublishFailures  int64 `json:"publish_failures"`
	QueryableSamples int64 `json:"queryable_samples"`
	AckedSampleLoss  int64 `json:"acked_sample_loss"`
	ProxyDelivered   int64 `json:"proxy_delivered"`
	ProxyDropped     int64 `json:"proxy_dropped"`
	ProxyRetries     int64 `json:"proxy_retries"`

	QueriesTotal    int64 `json:"queries_total"`
	QueriesFailed   int64 `json:"queries_failed"`
	QueriesDegraded int64 `json:"queries_degraded"`
	HedgedReads     int64 `json:"hedged_reads"`
	HedgeWins       int64 `json:"hedge_wins"`
	DegradedServes  int64 `json:"degraded_serves"`

	BreakerOpens     int64 `json:"breaker_opens"`
	BreakerHalfOpens int64 `json:"breaker_half_opens"`
	BreakerCloses    int64 `json:"breaker_closes"`

	WriterParks      int64 `json:"writer_parks"`
	DetectorParks    int64 `json:"detector_parks"`
	AnomaliesWritten int64 `json:"anomalies_written"`
	DetectorErrors   int64 `json:"detector_errors"`

	// The admission-blackout scenario: points acked through the
	// admission-gated gateway while storage was dark, typed 503 sheds
	// the controller issued, and how many of the acked points were
	// queryable after recovery (must be all of them).
	AdmissionAcked     int64 `json:"admission_acked_points"`
	AdmissionSheds     int64 `json:"admission_sheds"`
	AdmissionQueryable int64 `json:"admission_queryable_points"`

	RecoveryMS map[string]int64 `json:"recovery_ms"`
	Failures   []string         `json:"failures,omitempty"`
	Pass       bool             `json:"pass"`
}

func main() {
	seed := flag.Uint64("seed", 42, "seed for the fleet, the fault injector and every jittered backoff")
	duration := flag.Duration("duration", 20*time.Second, "approximate soak length; fault-hold windows scale with it")
	out := flag.String("out", "BENCH_chaos.json", "output JSON path (\"-\" for stdout)")
	flag.Parse()

	const (
		units     = 6
		sensors   = 8
		warmSteps = 100 // covers the cusum warmup (60) and the read window
		phaseStep = 120
	)
	hold := *duration / 10 // per-scenario fault-hold window
	if hold < 250*time.Millisecond {
		hold = 250 * time.Millisecond
	}
	recoveryBudget := 30 * time.Second

	rep := report{Seed: *seed, Duration: duration.String(), RecoveryMS: map[string]int64{}}
	fail := func(format string, args ...any) {
		msg := fmt.Sprintf(format, args...)
		fmt.Fprintln(os.Stderr, "chaossoak: FAIL:", msg)
		rep.Failures = append(rep.Failures, msg)
	}

	sys, err := sentinel.New(sentinel.Config{
		StorageNodes:    3,
		Units:           units,
		SensorsPerUnit:  sensors,
		Seed:            *seed,
		FaultFraction:   0.5,
		FaultOnset:      80,
		ShiftSigma:      8,
		PrimaryDetector: "cusum", // streaming family: no offline training needed
		ProxyMaxRetries: -1,      // zero-loss mode: retry until shutdown
		Breaker: resilience.BreakerConfig{
			FailureThreshold: 4,
			Cooldown:         250 * time.Millisecond,
		},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "chaossoak:", err)
		os.Exit(1)
	}
	defer sys.Close()

	inj := faultinject.New(*seed)
	sys.SetFaults(inj)

	// Warm phase: fault-free baseline ingest, detector pool up, and the
	// read window primed into the query cache so degraded serving has a
	// stale entry to fall back on.
	warmStats, err := sys.IngestRange(0, warmSteps)
	if err != nil {
		fmt.Fprintln(os.Stderr, "chaossoak: warm ingest:", err)
		os.Exit(1)
	}
	published := warmStats.Samples
	pubFailures := warmStats.Failures
	pool := sys.StartDetectors(2)
	defer pool.Stop()

	eng := sys.QueryEngine(query.Config{
		Breakers:   sys.Breakers,
		HedgeDelay: 15 * time.Millisecond,
		ServeStale: true,
	})
	warmQ := tsdb.Query{
		Metric: tsdb.MetricEnergy,
		Tags:   map[string]string{"unit": "0"},
		Start:  0, End: warmSteps - 1,
	}
	if _, err := eng.QueryContext(context.Background(), warmQ); err != nil {
		fmt.Fprintln(os.Stderr, "chaossoak: prime query:", err)
		os.Exit(1)
	}

	// The availability reader: one warmed-window query every few
	// milliseconds, across every scenario. Failures are the headline
	// invariant; degraded answers are legal (and expected in blackout).
	var qTotal, qFailed, qDegraded atomic.Int64
	readerCtx, stopReader := context.WithCancel(context.Background())
	var readerWG sync.WaitGroup
	readerWG.Add(1)
	go func() {
		defer readerWG.Done()
		for readerCtx.Err() == nil {
			mctx, marker := query.WithDegradedMarker(readerCtx)
			qctx, cancel := context.WithTimeout(mctx, 5*time.Second)
			_, err := eng.QueryContext(qctx, warmQ)
			cancel()
			if readerCtx.Err() != nil {
				return
			}
			qTotal.Add(1)
			if err != nil {
				qFailed.Add(1)
				fmt.Fprintf(os.Stderr, "chaossoak: reader query failed: %v\n", err)
			}
			if marker.Degraded() {
				qDegraded.Add(1)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}()

	topic := sys.Topic()
	driver := ingest.NewBusDriver(sys.Fleet, bus.LocalTopic{Topic: topic}, ingest.DriverConfig{})
	storageGroup := topic.Group(sentinel.GroupStorage)
	next := int64(warmSteps)

	// drain bounds each scenario's recovery: the storage group must
	// empty and the proxy flush within the budget once faults clear.
	drain := func(phase string) {
		start := time.Now()
		ctx, cancel := context.WithTimeout(context.Background(), recoveryBudget)
		defer cancel()
		if err := storageGroup.Sync(ctx); err != nil {
			fail("phase %s: storage group did not drain within %s: %v", phase, recoveryBudget, err)
			return
		}
		sys.Proxy.Flush()
		rep.RecoveryMS[phase] = time.Since(start).Milliseconds()
	}

	// runPhase publishes one step range with the scenario's faults
	// active, holds the fault window, clears it, and verifies recovery.
	runPhase := func(name string, setup, teardown func()) {
		rep.Phases = append(rep.Phases, name)
		fmt.Fprintf(os.Stderr, "chaossoak: phase %s (hold %s)\n", name, hold)
		if setup != nil {
			setup()
		}
		stats, err := driver.RunContext(context.Background(), next, phaseStep)
		if err != nil {
			fail("phase %s: publish: %v", name, err)
		}
		published += stats.Samples
		pubFailures += stats.Failures
		next += phaseStep
		time.Sleep(hold)
		if teardown != nil {
			teardown()
		}
		drain(name)
	}

	// Scenario 1: a TSD daemon killed mid-ingest and restarted by the
	// operator. Unbounded proxy retries plus failover carry the batches.
	runPhase("tsd-crash-restart",
		func() {
			if err := sys.TSDB.CrashTSD("tsd-2"); err != nil {
				fail("crash tsd-2: %v", err)
			}
		},
		func() {
			if err := sys.TSDB.RestartTSD("tsd-2"); err != nil {
				fail("restart tsd-2: %v", err)
			}
		})

	// Scenario 2: a 10% error burst across every TSD RPC.
	runPhase("rpc-error-burst",
		func() { inj.Set("burst", faultinject.Rule{Op: "rpc/tsd/", ErrorRate: 0.10}) },
		func() { inj.Clear("burst") })

	// Scenario 3: the proxy's submission edge stalls outright; storage
	// writers park with their records uncommitted until it clears.
	runPhase("proxy-stall",
		func() { inj.Set("stall", faultinject.Rule{Op: "proxy/submit", Stall: true}) },
		func() { inj.Clear("stall") })

	// Scenario 4: full storage blackout — every TSD RPC and every
	// in-process storage write fails, tripping every breaker. The
	// watermark bump invalidates the warmed cache entry so reader
	// queries must take the stale-degraded path, not a cache hit.
	runPhase("breaker-blackout",
		func() {
			inj.Set("blackout-rpc", faultinject.Rule{Op: "rpc/tsd/", ErrorRate: 1})
			inj.Set("blackout-put", faultinject.Rule{Op: "tsdb/put/", ErrorRate: 1})
			sys.TSDB.Watermarks().Bump(tsdb.MetricEnergy)
		},
		func() {
			if sys.Breakers.OpenCount() == 0 {
				fail("blackout never opened a breaker")
			}
			inj.Reset()
		})

	// Recovery: every breaker must re-close within the budget. The
	// reader alone cannot prove this — once one successful fetch
	// repopulates its cache, hits stop touching the backends — so a
	// cache-free prober sharing the breaker group keeps offering
	// half-open probes until every circuit closes, standing in for the
	// steady background traffic a live deployment would have.
	prober := sys.QueryEngine(query.Config{MaxEntries: -1, Breakers: sys.Breakers})
	closeStart := time.Now()
	for sys.Breakers.OpenCount() > 0 {
		if time.Since(closeStart) > recoveryBudget {
			fail("breakers never closed after blackout cleared (still open: %d)", sys.Breakers.OpenCount())
			break
		}
		pctx, pcancel := context.WithTimeout(context.Background(), time.Second)
		_, _ = prober.QueryContext(pctx, warmQ)
		pcancel()
		time.Sleep(20 * time.Millisecond)
	}
	rep.RecoveryMS["breakers-closed"] = time.Since(closeStart).Milliseconds()

	// Scenario 5: admission-controlled shedding through a second
	// storage blackout, driven over the real HTTP surface. A gateway
	// with a deliberately tiny storage-lag budget faces SDK writers
	// with retries off: once the blackout parks the storage group and
	// lag crosses the budget, the controller must shed with typed 503s
	// — and every point acked BEFORE a shed is an unbreakable promise
	// that survives the blackout on the bus. Shedding is only legal
	// before the ack, never after.
	rep.Phases = append(rep.Phases, "admission-blackout-shed")
	fmt.Fprintln(os.Stderr, "chaossoak: phase admission-blackout-shed")
	admitted, shed, admErrs := runAdmissionBlackout(sys, inj, units, sensors, hold, fail)
	drain("admission-blackout-shed")
	closeBreakersAgain := time.Now()
	for sys.Breakers.OpenCount() > 0 {
		if time.Since(closeBreakersAgain) > recoveryBudget {
			fail("breakers never re-closed after admission blackout (still open: %d)", sys.Breakers.OpenCount())
			break
		}
		pctx, pcancel := context.WithTimeout(context.Background(), time.Second)
		_, _ = prober.QueryContext(pctx, warmQ)
		pcancel()
		time.Sleep(20 * time.Millisecond)
	}
	rep.AdmissionAcked = admitted
	rep.AdmissionSheds = shed
	bandQueryable := countBand(sys, units, fail)
	rep.AdmissionQueryable = bandQueryable
	if shed == 0 {
		fail("admission blackout shed nothing: the lag signal never engaged")
	}
	if admErrs != 0 {
		fail("admission blackout produced %d non-shed errors", admErrs)
	}
	if bandQueryable < admitted {
		fail("admission blackout dropped acked records: %d acked, %d queryable", admitted, bandQueryable)
	}

	// Let the detector pool catch up, then stop the reader.
	syncCtx, cancelSync := context.WithTimeout(context.Background(), recoveryBudget)
	if err := pool.Sync(syncCtx); err != nil {
		fail("detector pool did not catch up: %v", err)
	}
	cancelSync()
	stopReader()
	readerWG.Wait()

	// Verification: every acknowledged sample is queryable. The
	// verifier engine is cache-free so it reads storage, not the LRU.
	totalSteps := next
	expected := int64(units) * int64(sensors) * totalSteps
	verifier := sys.QueryEngine(query.Config{MaxEntries: -1})
	var queryable int64
	for u := 0; u < units; u++ {
		q := tsdb.Query{
			Metric: tsdb.MetricEnergy,
			Tags:   map[string]string{"unit": fmt.Sprint(u)},
			Start:  0, End: totalSteps - 1,
		}
		series, err := verifier.QueryContext(context.Background(), q)
		if err != nil {
			fail("verify unit %d: %v", u, err)
			continue
		}
		for i := range series {
			queryable += int64(len(series[i].Samples))
			if int64(len(series[i].Samples)) != totalSteps {
				fail("unit %d series %v: %d samples, want %d", u, series[i].Tags, len(series[i].Samples), totalSteps)
			}
		}
	}

	rep.PublishedSamples = published
	rep.PublishFailures = pubFailures
	rep.QueryableSamples = queryable
	rep.AckedSampleLoss = expected - queryable
	rep.ProxyDelivered = sys.Proxy.Delivered.Value()
	rep.ProxyDropped = sys.Proxy.Dropped.Value()
	rep.ProxyRetries = sys.Proxy.Retries.Value()
	rep.QueriesTotal = qTotal.Load()
	rep.QueriesFailed = qFailed.Load()
	rep.QueriesDegraded = qDegraded.Load()
	rep.HedgedReads = eng.Hedged.Value()
	rep.HedgeWins = eng.HedgeWins.Value()
	rep.DegradedServes = eng.DegradedServes.Value()
	rep.BreakerOpens = sys.Breakers.Opens.Value()
	rep.BreakerHalfOpens = sys.Breakers.HalfOpens.Value()
	rep.BreakerCloses = sys.Breakers.Closes.Value()
	rep.WriterParks = sys.Writers.Parks.Value()
	rep.DetectorParks = pool.Parks.Value()
	rep.AnomaliesWritten = pool.AnomaliesWritten.Value()
	rep.DetectorErrors = pool.Errors.Value()

	// The invariants.
	if pubFailures != 0 {
		fail("%d publishes failed: every publish should be acked or retried", pubFailures)
	}
	if published != expected {
		fail("published %d acked samples, expected %d", published, expected)
	}
	if rep.AckedSampleLoss != 0 {
		fail("acked-sample loss: %d acked samples not queryable", rep.AckedSampleLoss)
	}
	if rep.ProxyDropped != 0 {
		fail("proxy dropped %d points in zero-loss mode", rep.ProxyDropped)
	}
	if rep.QueriesTotal == 0 {
		fail("availability reader issued no queries")
	}
	if rep.QueriesFailed != 0 {
		fail("%d reader queries failed: availability broke", rep.QueriesFailed)
	}
	if rep.QueriesDegraded == 0 {
		fail("no degraded reads observed: the blackout should have forced stale serving")
	}
	if rep.BreakerOpens == 0 || rep.BreakerHalfOpens == 0 || rep.BreakerCloses == 0 {
		fail("breaker cycle incomplete: opens=%d half-opens=%d closes=%d",
			rep.BreakerOpens, rep.BreakerHalfOpens, rep.BreakerCloses)
	}
	if rep.AnomaliesWritten == 0 {
		fail("no anomalies written: the detection path was silent all soak")
	}
	if rep.DetectorErrors != 0 {
		fail("detector pool counted %d errors: transient faults should park, not drop", rep.DetectorErrors)
	}

	rep.Pass = len(rep.Failures) == 0

	enc, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "chaossoak: marshal:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "-" {
		os.Stdout.Write(enc)
	} else if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "chaossoak:", err)
		os.Exit(1)
	}
	if !rep.Pass {
		fmt.Fprintf(os.Stderr, "chaossoak: FAILED (%d invariant violations)\n", len(rep.Failures))
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "chaossoak: PASS — %d samples, %d queries (%d degraded), breakers %d/%d/%d open/half-open/close\n",
		published, rep.QueriesTotal, rep.QueriesDegraded, rep.BreakerOpens, rep.BreakerHalfOpens, rep.BreakerCloses)
}

// admissionBand is the timestamp band the admission-blackout scenario
// writes into: far above any driver step, so its ledger is disjoint
// from the phase ingest verified against `expected`.
const admissionBand = int64(1) << 20

// runAdmissionBlackout drives SDK writers (retries OFF) at an
// admission-gated gateway through a storage blackout. The controller
// gets a deliberately tiny storage-lag budget so the parked storage
// group trips shedding within a few dozen acked rows. Returns acked
// points, typed sheds, and non-shed errors; faults are cleared before
// returning so the caller can drain.
func runAdmissionBlackout(sys *sentinel.System, inj *faultinject.Injector, units, sensors int, hold time.Duration, fail func(string, ...any)) (acked, sheds, errs int64) {
	ctrl := sys.NewAdmissionController(48, admission.Config{})
	h, tail := sys.Gateway(0, sentinel.GatewayConfig{
		Admission: ctrl,
		AccessLog: log.New(io.Discard, "", 0),
	})
	defer tail.Close()
	srv := httptest.NewServer(h)
	defer srv.Close()
	cl, err := client.New(srv.URL, client.WithHTTPClient(srv.Client()), client.WithRetry(0, time.Millisecond))
	if err != nil {
		fail("admission blackout: client: %v", err)
		return
	}

	inj.Set("adm-blackout-rpc", faultinject.Rule{Op: "rpc/tsd/", ErrorRate: 1})
	inj.Set("adm-blackout-put", faultinject.Rule{Op: "tsdb/put/", ErrorRate: 1})
	defer func() {
		inj.Clear("adm-blackout-rpc")
		inj.Clear("adm-blackout-put")
	}()

	deadline := time.Now().Add(hold)
	for i := int64(0); time.Now().Before(deadline) || sheds == 0; i++ {
		if i >= 20000 {
			fail("admission blackout: no shed after %d rows", i)
			break
		}
		unit := int(i) % units
		ts := admissionBand + i/int64(units)
		pts := make([]v1.Point, sensors)
		for s := 0; s < sensors; s++ {
			pts[s] = v1.Point{
				Metric:    tsdb.MetricEnergy,
				Timestamp: ts,
				Value:     float64(unit),
				Tags:      map[string]string{"unit": fmt.Sprint(unit), "sensor": fmt.Sprint(s)},
			}
		}
		n, err := cl.PutPoints(context.Background(), pts)
		switch {
		case err == nil:
			acked += int64(n)
		case errors.Is(err, client.ErrOverloaded):
			sheds++
		default:
			errs++
		}
		time.Sleep(500 * time.Microsecond)
	}
	return acked, sheds, errs
}

// countBand counts the admission-band samples queryable from storage
// through a cache-free engine.
func countBand(sys *sentinel.System, units int, fail func(string, ...any)) int64 {
	verifier := sys.QueryEngine(query.Config{MaxEntries: -1})
	var total int64
	for u := 0; u < units; u++ {
		series, err := verifier.QueryContext(context.Background(), tsdb.Query{
			Metric: tsdb.MetricEnergy,
			Tags:   map[string]string{"unit": fmt.Sprint(u)},
			Start:  admissionBand,
			End:    admissionBand + (1 << 16),
		})
		if err != nil {
			fail("verify admission band unit %d: %v", u, err)
			continue
		}
		for i := range series {
			total += int64(len(series[i].Samples))
		}
	}
	return total
}
