// Command loadgen is the million-client load harness: an open-loop,
// coordinated-omission-safe generator that drives the gateway with a
// configurable client mix — ingest writers (POST /api/v1/points),
// interactive dashboard readers (the cached query tier), bulk NDJSON
// exporters, and SSE anomaly tailers — and proves the admission
// subsystem's contract under deliberate overload.
//
// Open-loop means arrivals follow a fixed schedule, not the server's
// pace: request i of a class is due at start + i/rate, and its latency
// is measured from that scheduled instant, so time a client would have
// spent queueing behind a slow server counts against the server
// (avoiding the coordinated-omission trap where a stalled load loop
// under-samples exactly the latencies that matter). A fixed worker
// pool far larger than the steady-state concurrency stands in for an
// unbounded client population.
//
// The run has three phases:
//
//  1. Calibrate: a closed-loop writer pool hammers ingest and the
//     acked-row rate under admission control is the measured capacity
//     (with -self, capacity is pinned by the per-node service-rate
//     throttle, so the number is CPU-independent).
//  2. Drive: writers offer -overload × capacity open-loop, readers and
//     exporters ride along at -read-frac / -bulk-frac of that rate,
//     tailers hold SSE streams. Per-class latency histograms and
//     shed/error counters record what the admission layer did.
//  3. Verify: the storage tier drains, then every acked sample must be
//     queryable — overload shedding is only legal BEFORE the ack.
//
// With -assert the process exits non-zero unless the overload contract
// held: bulk shed visibly, bulk shed at a higher rate than ingest
// (priority ordering), accepted-ingest p99 stayed under
// -max-ingest-p99, and not one acked sample was lost.
//
// Results land in BENCH_load.json (benchjson schema plus a "run"
// block) and, via -bench, as `go test -bench`-format lines for
// cmd/benchgate — `make load-smoke` gates them against the committed
// baseline.
//
// Usage:
//
//	loadgen -self -duration 8s -overload 2 -assert          # in-process System
//	loadgen -target http://127.0.0.1:8080 -duration 30s     # make cluster, or any gateway
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"math"
	"net"
	"net/http"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/admission"
	v1 "repro/internal/api/v1"
	"repro/internal/telemetry"
	"repro/sentinel"
	"repro/sentinel/client"
)

// classStats accumulates one traffic class's outcome: latencies of
// successful requests (measured from the open-loop scheduled send
// time), admission sheds, and other errors.
type classStats struct {
	name     string
	hist     *telemetry.Histogram // latency ns of successes
	attempts atomic.Int64
	ok       atomic.Int64
	shed     atomic.Int64
	errs     atomic.Int64
}

func newClassStats(name string) *classStats {
	h := &telemetry.Histogram{}
	// Bound retention so a nightly-length run keeps a stable memory
	// footprint; quantiles then cover the trailing window, which under
	// a steady offered rate is the steady state we are asserting on.
	h.SetWindow(1 << 18)
	return &classStats{name: name, hist: h}
}

func (c *classStats) shedFrac() float64 {
	a := c.attempts.Load()
	if a == 0 {
		return 0
	}
	return float64(c.shed.Load()) / float64(a)
}

// record classifies one request outcome. Context-canceled attempts at
// shutdown are dropped — they are the harness stopping, not the
// server answering.
func (c *classStats) record(ctx context.Context, lat time.Duration, err error) {
	if err != nil && ctx.Err() != nil {
		return
	}
	c.attempts.Add(1)
	switch {
	case err == nil:
		c.ok.Add(1)
		c.hist.Observe(float64(lat.Nanoseconds()))
	case errors.Is(err, client.ErrOverloaded):
		c.shed.Add(1)
	default:
		var ae *v1.Error
		if errors.As(err, &ae) && ae.Status == 429 {
			c.shed.Add(1)
			return
		}
		c.errs.Add(1)
	}
}

// report is the "run" block of BENCH_load.json: everything about the
// run that is not a benchmark metric.
type report struct {
	Mode            string  `json:"mode"`
	Duration        string  `json:"duration"`
	CapacityRowsSec float64 `json:"capacity_rows_per_sec"`
	OverloadFactor  float64 `json:"overload_factor"`
	OfferedRowsSec  float64 `json:"offered_rows_per_sec"`

	AckedRows     int64  `json:"acked_rows"`
	AckedPoints   int64  `json:"acked_points"`
	Queryable     int64  `json:"queryable_points"`
	AckedLoss     int64  `json:"acked_point_loss"`
	IngestSheds   int64  `json:"ingest_sheds"`
	ReadSheds     int64  `json:"interactive_sheds"`
	BulkSheds     int64  `json:"bulk_sheds"`
	TailerEvents  int64  `json:"tailer_events"`
	TailerSheds   int64  `json:"tailer_sheds"`
	OtherErrors   int64  `json:"other_errors"`
	ShedFracOrder string `json:"shed_frac_order"`

	DetectorWorkers int   `json:"detector_workers,omitempty"`
	ScaleUps        int64 `json:"detector_scale_ups,omitempty"`
	ScaleDowns      int64 `json:"detector_scale_downs,omitempty"`

	Failures []string `json:"failures,omitempty"`
	Pass     bool     `json:"pass"`
}

// benchEntry mirrors cmd/benchjson's per-benchmark schema so the
// emitted document doubles as a benchgate baseline.
type benchEntry struct {
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op"`
	AllocsPerOp float64            `json:"allocs_per_op"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

func main() {
	var (
		self     = flag.Bool("self", false, "boot an in-process System and drive it over a real listener")
		target   = flag.String("target", "", "drive an external gateway base URL (e.g. the make cluster topology)")
		units    = flag.Int("units", 8, "fleet units the writers cover (must match the target's fleet)")
		sensors  = flag.Int("sensors", 8, "sensors per unit (one write = one full sensor row)")
		nodes    = flag.Int("nodes", 3, "-self: storage nodes")
		nodeRate = flag.Float64("node-rate", 4000, "-self: per-node service ceiling, samples/s (0 = unthrottled)")
		calib    = flag.Duration("calibrate", 3*time.Second, "closed-loop capacity-measurement phase length")
		duration = flag.Duration("duration", 8*time.Second, "open-loop drive phase length")
		overload = flag.Float64("overload", 2.0, "offered ingest rate as a multiple of measured capacity")
		writers  = flag.Int("writers", 32, "ingest worker pool (stands in for the writer population)")
		readers  = flag.Int("readers", 8, "interactive reader worker pool")
		bulkers  = flag.Int("bulkers", 4, "bulk NDJSON exporter worker pool")
		tailers  = flag.Int("tailers", 4, "concurrent SSE anomaly tailers held across the run")
		readFrac = flag.Float64("read-frac", 0.10, "interactive request rate as a fraction of offered ingest")
		bulkFrac = flag.Float64("bulk-frac", 0.05, "bulk request rate as a fraction of offered ingest")
		maxP99   = flag.Duration("max-ingest-p99", 250*time.Millisecond, "-assert: accepted-ingest p99 bound")
		assert   = flag.Bool("assert", false, "exit non-zero unless the overload contract held")
		outPath  = flag.String("out", "BENCH_load.json", "result JSON path (\"-\" for stdout)")
		benchOut = flag.String("bench", "", "also write go-bench-format lines here (benchgate input)")
		drainTO  = flag.Duration("drain-timeout", 30*time.Second, "how long verification waits for storage to drain")
	)
	flag.Parse()
	if (*self && *target != "") || (!*self && *target == "") {
		fmt.Fprintln(os.Stderr, "loadgen: exactly one of -self or -target required")
		os.Exit(2)
	}

	rep := report{Mode: "target", Duration: duration.String(), OverloadFactor: *overload}
	fail := func(format string, args ...any) {
		msg := fmt.Sprintf(format, args...)
		fmt.Fprintln(os.Stderr, "loadgen: FAIL:", msg)
		rep.Failures = append(rep.Failures, msg)
	}

	// --- Gateway under test -------------------------------------------------
	baseURL := *target
	var (
		sys    *sentinel.System
		ctrl   *admission.Controller
		pool   *sentinel.DetectorPool
		scaler *admission.Autoscaler
	)
	if *self {
		rep.Mode = "self"
		var err error
		sys, err = sentinel.New(sentinel.Config{
			StorageNodes:    *nodes,
			Units:           *units,
			SensorsPerUnit:  *sensors,
			Seed:            42,
			PerNodeRate:     *nodeRate,
			PrimaryDetector: "cusum", // streaming family: no offline training
			ProxyMaxRetries: -1,      // zero-loss mode: an ack is a promise
			// Deep partition buffers with the shed limit far below
			// them: admission must engage while publish is still
			// non-blocking, or accepted-ingest latency absorbs the
			// overload the controller was supposed to reject. 2048
			// records total across 4×4096 partition windows leaves an
			// 8× skew margin before any single partition can block.
			BusBuffer: 4096,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "loadgen:", err)
			os.Exit(1)
		}
		defer sys.Close()
		pool = sys.StartDetectors(1)
		defer pool.Stop()
		// The detector group shares the bus's uncommitted windows: if
		// it lags to a partition cap, publishes — and therefore acked
		// ingest — block behind detection. Its lag is an overload
		// signal exactly like storage lag.
		ctrl = sys.NewAdmissionController(2048, admission.Config{
			Signals: []admission.Signal{{Name: "detector_lag", Load: pool.Group().Lag, Limit: 2048}},
		})
		scaler = sys.AutoscaleDetectors(pool, admission.AutoscaleConfig{Min: 1})
		defer scaler.Stop()
		h, tail := sys.Gateway(0, sentinel.GatewayConfig{
			Now:       func() int64 { return time.Now().Unix() },
			Admission: ctrl,
			AccessLog: log.New(io.Discard, "", 0), // 10^3 req/s of access lines helps nobody
		})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fmt.Fprintln(os.Stderr, "loadgen: listen:", err)
			os.Exit(1)
		}
		srv := &http.Server{Handler: h}
		go srv.Serve(ln)
		defer srv.Close()
		defer tail.Close()
		baseURL = "http://" + ln.Addr().String()
		fmt.Fprintf(os.Stderr, "loadgen: self gateway on %s (capacity throttle %.0f samples/s × %d nodes)\n",
			baseURL, *nodeRate, *nodes)
	}

	// One shared SDK client, retries off: a shed must surface as
	// ErrOverloaded and be counted, not silently retried away. The
	// transport is sized for the worker population — the default two
	// idle conns per host would serialize the whole fleet.
	transport := &http.Transport{MaxIdleConns: 4096, MaxIdleConnsPerHost: 4096}
	defer transport.CloseIdleConnections()
	cl, err := client.New(baseURL,
		client.WithHTTPClient(&http.Client{Transport: transport, Timeout: 30 * time.Second}),
		client.WithRetry(0, time.Millisecond))
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}

	// --- Traffic shapes -----------------------------------------------------
	// Writers emit full sensor rows in a private timestamp band far
	// above any simulated-fleet data: row i is unit i%units at
	// timestamp base + i/units, so every (unit, ts, sensor) cell is
	// written exactly once and verification can demand exact presence.
	const tsBase = int64(1) << 20
	var (
		rowSeq      atomic.Int64
		ackedRows   atomic.Int64
		ackedPoints atomic.Int64
	)
	makeRow := func() []v1.Point {
		i := rowSeq.Add(1) - 1
		unit := int(i) % *units
		ts := tsBase + i/int64(*units)
		pts := make([]v1.Point, *sensors)
		for s := 0; s < *sensors; s++ {
			// Steady-state values are quiet on purpose: a drifting
			// signal keeps the streaming detectors permanently alarmed
			// and their flag write-back then competes with ingest for
			// the throttled storage budget. Sparse spikes keep the
			// anomaly tail alive without that flood.
			v := float64(unit) + 0.05*math.Sin(2*math.Pi*float64(ts%7)/7)
			if i%997 == 0 && s == 0 {
				v += 40
			}
			pts[s] = v1.Point{
				Metric:    "energy",
				Timestamp: ts,
				Value:     v,
				Tags:      map[string]string{"unit": strconv.Itoa(unit), "sensor": strconv.Itoa(s)},
			}
		}
		return pts
	}
	writeRow := func(ctx context.Context) error {
		n, err := cl.PutPoints(ctx, makeRow())
		if err != nil {
			return err
		}
		ackedRows.Add(1)
		ackedPoints.Add(int64(n))
		return nil
	}
	// Readers sweep a sliding window over what the writers have landed
	// so far; exporters fetch the same shape as NDJSON, which the
	// gateway classifies as Bulk.
	var readSeq atomic.Int64
	readParams := func() client.QueryParams {
		written := rowSeq.Load() / int64(*units)
		from := tsBase
		if written > 256 {
			from = tsBase + written - 256
		}
		return client.QueryParams{
			Unit: strconv.Itoa(int(readSeq.Add(1)) % *units),
			From: from,
			To:   tsBase + written,
		}
	}
	readQuery := func(ctx context.Context) error {
		_, err := cl.Query(ctx, readParams())
		return err
	}
	bulkQuery := func(ctx context.Context) error {
		return cl.QueryNDJSON(ctx, readParams(), func(v1.Series) error { return nil })
	}

	// --- SSE tailers (held across calibrate + drive) ------------------------
	var tailEvents, tailSheds atomic.Int64
	tailCtx, stopTails := context.WithCancel(context.Background())
	var tailWG sync.WaitGroup
	for i := 0; i < *tailers; i++ {
		tailWG.Add(1)
		go func() {
			defer tailWG.Done()
			for tailCtx.Err() == nil {
				st, err := cl.StreamAnomalies(tailCtx)
				if err != nil {
					if errors.Is(err, client.ErrOverloaded) {
						tailSheds.Add(1)
					}
					select {
					case <-tailCtx.Done():
					case <-time.After(500 * time.Millisecond):
					}
					continue
				}
				for {
					if _, err := st.Next(); err != nil {
						break
					}
					tailEvents.Add(1)
				}
				st.Close()
			}
		}()
	}

	// --- Phase 1: calibrate -------------------------------------------------
	ingest := newClassStats("ingest")
	interactive := newClassStats("interactive")
	bulk := newClassStats("bulk")

	calStats := newClassStats("calibrate")
	calCtx, calCancel := context.WithTimeout(context.Background(), *calib)
	var calWG sync.WaitGroup
	for w := 0; w < *writers; w++ {
		calWG.Add(1)
		go func() {
			defer calWG.Done()
			for calCtx.Err() == nil {
				t0 := time.Now()
				err := writeRow(calCtx)
				calStats.record(calCtx, time.Since(t0), err)
			}
		}()
	}
	calWG.Wait()
	calCancel()
	capacity := float64(calStats.ok.Load()) / calib.Seconds()
	rep.CapacityRowsSec = capacity
	if capacity < 1 {
		fail("calibration measured no capacity (acked %d rows in %s, %d sheds, %d errors)",
			calStats.ok.Load(), calib, calStats.shed.Load(), calStats.errs.Load())
		finish(&rep, nil, nil, nil, *outPath, *benchOut)
	}
	offered := capacity * *overload
	rep.OfferedRowsSec = offered
	fmt.Fprintf(os.Stderr, "loadgen: capacity %.0f rows/s (calibration shed %.0f%%), driving %.0f rows/s open-loop for %s\n",
		capacity, 100*calStats.shedFrac(), offered, duration)

	// --- Phase 2: drive open-loop -------------------------------------------
	runCtx, runCancel := context.WithTimeout(context.Background(), *duration)
	var runWG sync.WaitGroup
	openLoop := func(rate float64, workers int, cs *classStats, fire func(context.Context) error) {
		if rate <= 0 || workers <= 0 {
			return
		}
		start := time.Now()
		var seq atomic.Int64
		for w := 0; w < workers; w++ {
			runWG.Add(1)
			go func() {
				defer runWG.Done()
				for {
					i := seq.Add(1) - 1
					sched := start.Add(time.Duration(float64(i) / rate * float64(time.Second)))
					if d := time.Until(sched); d > 0 {
						select {
						case <-runCtx.Done():
							return
						case <-time.After(d):
						}
					}
					if runCtx.Err() != nil {
						return
					}
					err := fire(runCtx)
					// Latency from the SCHEDULED send, not the actual
					// one: a stalled server owns the queueing delay.
					cs.record(runCtx, time.Since(sched), err)
				}
			}()
		}
	}
	openLoop(offered, *writers, ingest, writeRow)
	openLoop(offered**readFrac, *readers, interactive, readQuery)
	openLoop(offered**bulkFrac, *bulkers, bulk, bulkQuery)
	runWG.Wait()
	runCancel()
	stopTails()
	tailWG.Wait()

	// --- Phase 3: drain and verify ------------------------------------------
	if sys != nil {
		drainCtx, cancel := context.WithTimeout(context.Background(), *drainTO)
		if err := sys.Topic().Group(sentinel.GroupStorage).Sync(drainCtx); err != nil {
			fail("storage group did not drain within %s: %v", *drainTO, err)
		}
		cancel()
		sys.Proxy.Flush()
	}
	// Count every point in the writers' band through the query path,
	// waiting out residual drain (and, right after overload, residual
	// shedding — the verifier backs off on ErrOverloaded like a good
	// citizen). MaxPoints 0 means exact series, no LTTB thinning.
	verify := func() (int64, error) {
		lastTs := tsBase + rowSeq.Load()/int64(*units) + 1
		var total int64
		for u := 0; u < *units; u++ {
			series, err := cl.Query(context.Background(), client.QueryParams{
				Unit: strconv.Itoa(u),
				From: tsBase,
				To:   lastTs,
			})
			if err != nil {
				return 0, err
			}
			for i := range series {
				total += int64(len(series[i].Samples))
			}
		}
		return total, nil
	}
	acked := ackedPoints.Load()
	deadline := time.Now().Add(*drainTO)
	var queryable int64
	for {
		q, err := verify()
		if err == nil {
			queryable = q
			if queryable >= acked {
				break
			}
		}
		if time.Now().After(deadline) {
			if err != nil {
				fail("verification queries kept failing: %v", err)
			}
			break
		}
		wait := 500 * time.Millisecond
		var oe *client.OverloadedError
		if errors.As(err, &oe) && oe.RetryAfter > wait {
			wait = oe.RetryAfter
		}
		time.Sleep(wait)
	}

	// --- Report and assert --------------------------------------------------
	rep.AckedRows = ackedRows.Load()
	rep.AckedPoints = acked
	rep.Queryable = queryable
	rep.AckedLoss = acked - queryable
	if rep.AckedLoss < 0 {
		rep.AckedLoss = 0 // over-count impossible per (unit,ts,sensor); belt and braces
	}
	rep.IngestSheds = ingest.shed.Load() + calStats.shed.Load()
	rep.ReadSheds = interactive.shed.Load()
	rep.BulkSheds = bulk.shed.Load()
	rep.TailerEvents = tailEvents.Load()
	rep.TailerSheds = tailSheds.Load()
	rep.OtherErrors = ingest.errs.Load() + interactive.errs.Load() + bulk.errs.Load() + calStats.errs.Load()
	rep.ShedFracOrder = fmt.Sprintf("bulk %.3f ≥ interactive %.3f ≥ ingest %.3f",
		bulk.shedFrac(), interactive.shedFrac(), ingest.shedFrac())
	if pool != nil {
		rep.DetectorWorkers = pool.Workers()
		rep.ScaleUps = scaler.ScaleUps.Value()
		rep.ScaleDowns = scaler.ScaleDowns.Value()
	}

	if *assert {
		if ingest.ok.Load() == 0 {
			fail("no ingest request succeeded during the drive phase")
		}
		if bulk.shed.Load() == 0 {
			fail("no bulk sheds at %.1f× capacity — the admission layer never engaged", *overload)
		}
		if bf, inf := bulk.shedFrac(), ingest.shedFrac(); bf <= inf {
			fail("priority inversion: bulk shed frac %.3f ≤ ingest shed frac %.3f", bf, inf)
		}
		if p99 := time.Duration(ingest.hist.Quantile(0.99)); p99 > *maxP99 {
			fail("accepted-ingest p99 %s exceeds bound %s at %.1f× capacity", p99, *maxP99, *overload)
		}
		if queryable < acked {
			fail("acked-sample loss: %d points acked, only %d queryable", acked, queryable)
		}
		if rep.OtherErrors > 0 {
			fail("%d non-shed errors — overload must shed typed, not fail", rep.OtherErrors)
		}
	}
	rep.Pass = len(rep.Failures) == 0
	finish(&rep, ingest, interactive, bulk, *outPath, *benchOut)
}

// finish writes BENCH_load.json (+ optional bench lines) and exits.
// Passing nil class stats (calibration failure) still emits the report
// so CI artifacts show what happened.
func finish(rep *report, ingest, interactive, bulk *classStats, outPath, benchOut string) {
	doc := map[string]any{
		"run":        rep,
		"benchmarks": map[string]benchEntry{},
	}
	benches := doc["benchmarks"].(map[string]benchEntry)
	var lines []string
	add := func(bench string, cs *classStats, rate float64) {
		if cs == nil {
			return
		}
		p99 := cs.hist.Quantile(0.99)
		benches[bench] = benchEntry{
			Iterations: cs.attempts.Load(),
			NsPerOp:    p99,
			Metrics: map[string]float64{
				"req/s":     rate,
				"p50_ms":    cs.hist.Quantile(0.50) / 1e6,
				"p999_ms":   cs.hist.Quantile(0.999) / 1e6,
				"shed_frac": cs.shedFrac(),
			},
		}
		lines = append(lines, fmt.Sprintf("%s \t%d\t%.0f ns/op\t%.1f req/s",
			bench, max64(cs.attempts.Load(), 1), p99, rate))
	}
	dur, _ := time.ParseDuration(rep.Duration)
	secs := dur.Seconds()
	if secs <= 0 {
		secs = 1
	}
	if ingest != nil {
		add("BenchmarkLoadIngest", ingest, float64(ingest.ok.Load())/secs)
		add("BenchmarkLoadInteractive", interactive, float64(interactive.ok.Load())/secs)
		add("BenchmarkLoadBulk", bulk, float64(bulk.ok.Load())/secs)
	}

	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadgen: marshal:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if outPath == "-" {
		os.Stdout.Write(enc)
	} else if err := os.WriteFile(outPath, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
	if benchOut != "" {
		var buf []byte
		for _, l := range lines {
			buf = append(buf, l...)
			buf = append(buf, '\n')
		}
		if err := os.WriteFile(benchOut, buf, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "loadgen:", err)
			os.Exit(1)
		}
	}
	if !rep.Pass {
		fmt.Fprintf(os.Stderr, "loadgen: FAILED (%d contract violations)\n", len(rep.Failures))
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "loadgen: PASS — %d rows acked at %.0f/%.0f rows/s offered/capacity; sheds ingest=%d interactive=%d bulk=%d; %s\n",
		rep.AckedRows, rep.OfferedRowsSec, rep.CapacityRowsSec,
		rep.IngestSheds, rep.ReadSheds, rep.BulkSheds, rep.ShedFracOrder)
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
