// Command tsdbench regenerates the paper's Figure 2 and the §III-B
// engineering findings on the simulated cluster:
//
//	tsdbench -sweep                 # Fig. 2 left: throughput vs node count
//	tsdbench -series -nodes 10      # Fig. 2 right: cumulative samples vs time
//	tsdbench -ablation salting      # §III-B: salted vs unsalted keys
//	tsdbench -ablation backpressure # §III-B: proxy vs unbuffered ingestion
//	tsdbench -ablation compaction   # §III-B: row compaction RPC overhead
//
// The per-node service rate emulates the paper's commodity-node
// ceiling (~13.3k samples/s/node), accelerated by -speedup so a sweep
// finishes in seconds; printed rates are rescaled to paper-scale.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"sync/atomic"
	"time"

	"repro/internal/hbase"
	"repro/internal/ingest"
	"repro/internal/proxy"
	"repro/internal/simdata"
	"repro/internal/telemetry"
	"repro/internal/tsdb"
)

func main() {
	var (
		sweep    = flag.Bool("sweep", false, "run the Figure 2 (left) node sweep")
		series   = flag.Bool("series", false, "run the Figure 2 (right) stable-rate series")
		ablation = flag.String("ablation", "", "run an ablation: salting | backpressure | compaction")
		nodes    = flag.Int("nodes", 10, "node count for -series and ablations")
		rate     = flag.Float64("rate", 13300, "emulated per-node service rate (samples/s, paper scale)")
		speedup  = flag.Float64("speedup", 1, "time acceleration factor (1 = real paper-scale rates)")
		seconds  = flag.Float64("seconds", 2.0, "wall-clock measurement window per configuration")
		units    = flag.Int("units", 100, "fleet units")
		sensors  = flag.Int("sensors", 1000, "sensors per unit")
	)
	flag.Parse()

	switch {
	case *sweep:
		runSweep(*rate, *speedup, *seconds, *units, *sensors)
	case *series:
		runSeries(*nodes, *rate, *speedup, *seconds, *units, *sensors)
	case *ablation != "":
		runAblation(*ablation, *nodes, *rate, *speedup, *seconds, *units, *sensors)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// rig is one bootstrapped storage deployment plus its workload driver.
type rig struct {
	cluster *hbase.Cluster
	deploy  *tsdb.Deployment
	px      *proxy.Proxy
	fleet   *simdata.Fleet
}

// buildRig boots nodes region servers + TSDs at the emulated rate with
// salting sized to the node count.
func buildRig(nodes int, emulatedRate float64, saltBuckets int, units, sensors int, queueCap int, crashAt int64) (*rig, error) {
	cluster, err := hbase.NewCluster(hbase.Config{
		RegionServers:    nodes,
		ServiceRatePerRS: emulatedRate,
		RSQueueCap:       queueCap,
		CrashOnOverflow:  crashAt,
	})
	if err != nil {
		return nil, err
	}
	deploy, err := tsdb.NewDeployment(cluster, nodes, tsdb.TSDConfig{SaltBuckets: saltBuckets})
	if err != nil {
		cluster.Stop()
		return nil, err
	}
	if err := deploy.CreateTable(); err != nil {
		cluster.Stop()
		return nil, err
	}
	px, err := proxy.New(cluster.Network(), deploy.Addrs(), proxy.Config{MaxInFlight: 2 * nodes})
	if err != nil {
		cluster.Stop()
		return nil, err
	}
	fleet := simdata.NewFleet(simdata.Config{Units: units, SensorsPerUnit: sensors, Seed: 42})
	return &rig{cluster: cluster, deploy: deploy, px: px, fleet: fleet}, nil
}

func (r *rig) stop() {
	r.px.Close()
	r.cluster.Stop()
}

// measure streams load through the proxy for roughly window seconds
// and returns achieved samples/second.
func (r *rig) measure(window float64) float64 {
	driver := ingest.NewDriver(r.fleet, r.px, ingest.DriverConfig{BatchSize: 1000, Senders: 8})
	start := time.Now()
	var total int64
	step := int64(0)
	for time.Since(start).Seconds() < window {
		stats, err := driver.Run(step, 1)
		if err != nil {
			log.Fatalf("tsdbench: %v", err)
		}
		total += stats.Samples
		step++
	}
	r.px.Flush()
	return float64(total) / time.Since(start).Seconds()
}

func runSweep(paperRate, speedup, seconds float64, units, sensors int) {
	fmt.Println("Figure 2 (left): ingestion throughput vs storage nodes")
	fmt.Printf("emulated per-node rate %.0f samples/s (paper scale), speedup ×%.0f\n\n", paperRate, speedup)
	fmt.Printf("%-8s %-22s %-22s\n", "nodes", "measured samples/s", "paper-scale samples/s")
	var xs, ys []float64
	for _, n := range []int{10, 15, 20, 25, 30} {
		r, err := buildRig(n, paperRate*speedup, n, units, sensors, 4096, 0)
		if err != nil {
			log.Fatalf("tsdbench: %v", err)
		}
		got := r.measure(seconds)
		r.stop()
		paperScale := got / speedup
		fmt.Printf("%-8d %-22.0f %-22.0f\n", n, got, paperScale)
		xs = append(xs, float64(n))
		ys = append(ys, paperScale)
	}
	_, slope, r2 := telemetry.LinearFit(xs, ys)
	fmt.Printf("\nlinear fit: %.0f samples/s per added node (paper: ~11k), R²=%.4f\n", slope, r2)
	fmt.Println("paper reference: 10→173k, 15→233k, 20→257k, 25→325k, 30→399k samples/s")
}

func runSeries(nodes int, paperRate, speedup, seconds float64, units, sensors int) {
	fmt.Printf("Figure 2 (right): cumulative samples vs time, %d nodes\n\n", nodes)
	r, err := buildRig(nodes, paperRate*speedup, nodes, units, sensors, 4096, 0)
	if err != nil {
		log.Fatalf("tsdbench: %v", err)
	}
	defer r.stop()
	// Submit continuously in the background; the *delivered* counter on
	// the proxy is the ingestion-side truth Figure 2 plots.
	stop := make(chan struct{})
	go func() {
		driver := ingest.NewDriver(r.fleet, r.px, ingest.DriverConfig{BatchSize: 1000, Senders: 8})
		for step := int64(0); ; step++ {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := driver.Run(step, 1); err != nil {
				return
			}
		}
	}()
	fmt.Printf("%-12s %-16s %-16s\n", "elapsed(s)", "cumulative", "interval rate/s")
	var xs, ys []float64
	start := time.Now()
	tick := time.NewTicker(100 * time.Millisecond)
	defer tick.Stop()
	prev := int64(0)
	prevT := start
	for now := range tick.C {
		cum := r.px.Delivered.Value()
		el := now.Sub(start).Seconds()
		rate := float64(cum-prev) / now.Sub(prevT).Seconds()
		fmt.Printf("%-12.2f %-16d %-16.0f\n", el, cum, rate)
		xs = append(xs, el)
		ys = append(ys, float64(cum))
		prev, prevT = cum, now
		if el >= seconds {
			break
		}
	}
	close(stop)
	_, slope, r2 := telemetry.LinearFit(xs, ys)
	fmt.Printf("\ncumulative-curve: slope %.0f samples/s, linearity R² = %.5f (stable rate ⇒ ≈1)\n", slope/speedup, r2)
}

func runAblation(which string, nodes int, paperRate, speedup, seconds float64, units, sensors int) {
	switch which {
	case "salting":
		fmt.Println("§III-B ablation: row-key salting")
		for _, salted := range []bool{false, true} {
			buckets := 0
			if salted {
				buckets = nodes
			}
			r, err := buildRig(nodes, paperRate*speedup, buckets, units, sensors, 4096, 0)
			if err != nil {
				log.Fatalf("tsdbench: %v", err)
			}
			got := r.measure(seconds)
			shares := r.cluster.WriteShares()
			maxShare := 0.0
			for _, s := range shares {
				if s > maxShare {
					maxShare = s
				}
			}
			r.stop()
			fmt.Printf("  salted=%-5v throughput=%8.0f samples/s  hottest-server share=%.0f%%\n",
				salted, got/speedup, 100*maxShare)
		}
		fmt.Println("  (paper: salting gave a dramatic increase by using all RegionServers)")
	case "backpressure":
		fmt.Println("§III-B ablation: buffering reverse proxy vs unbuffered clients")
		// Unbuffered: fail-fast clients hammer the TSD tier directly;
		// region servers have small queues and crash on overflow.
		runBackpressure(nodes, paperRate*speedup, seconds, units, sensors)
	case "compaction":
		fmt.Println("§III-B ablation: OpenTSDB row compaction RPC cost")
		runCompaction(nodes, units, sensors)
	default:
		log.Fatalf("tsdbench: unknown ablation %q", which)
	}
}

// runBackpressure contrasts unbounded concurrent producers (real
// OpenTSDB applies no backpressure toward HBase: RegionServer RPC
// queues overflow until servers crash) against the same load pushed
// through the buffering proxy, whose bounded in-flight window keeps
// queue depth under the RegionServers' capacity.
func runBackpressure(nodes int, emulatedRate, seconds float64, units, sensors int) {
	const writers = 128
	for _, buffered := range []bool{false, true} {
		cluster, err := hbase.NewCluster(hbase.Config{
			RegionServers:    nodes,
			ServiceRatePerRS: emulatedRate,
			RSQueueCap:       8,
			CrashOnOverflow:  64,
		})
		if err != nil {
			log.Fatalf("tsdbench: %v", err)
		}
		deploy, err := tsdb.NewDeployment(cluster, nodes, tsdb.TSDConfig{
			SaltBuckets: nodes,
			Workers:     writers, // the TSD tier itself is not the bottleneck
			QueueCap:    writers * 4,
			FailFast:    true, // OpenTSDB gives HBase no backpressure
		})
		if err != nil {
			log.Fatalf("tsdbench: %v", err)
		}
		if err := deploy.CreateTable(); err != nil {
			log.Fatalf("tsdbench: %v", err)
		}
		fleet := simdata.NewFleet(simdata.Config{Units: units, SensorsPerUnit: sensors, Seed: 42})
		var delivered, failed int64
		if buffered {
			// Proxy bounds concurrency below the RS queue capacity.
			px, err := proxy.New(cluster.Network(), deploy.Addrs(), proxy.Config{MaxInFlight: nodes})
			if err != nil {
				log.Fatalf("tsdbench: %v", err)
			}
			driver := ingest.NewDriver(fleet, px, ingest.DriverConfig{BatchSize: 500, Senders: writers})
			start := time.Now()
			for step := int64(0); time.Since(start).Seconds() < seconds; step++ {
				_, _ = driver.Run(step, 1)
			}
			px.Flush()
			delivered = px.Delivered.Value()
			failed = px.Dropped.Value()
			px.Close()
		} else {
			// Unbounded: every producer slams the TSD tier directly.
			var rr atomic.Uint64
			addrs := deploy.Addrs()
			sink := ingest.SinkFunc(func(pts []tsdb.Point) error {
				addr := addrs[int(rr.Add(1))%len(addrs)]
				_, err := cluster.Network().Call(context.Background(), addr, "put", &tsdb.PutBatch{Points: pts})
				return err
			})
			driver := ingest.NewDriver(fleet, sink, ingest.DriverConfig{BatchSize: 500, Senders: writers})
			start := time.Now()
			for step := int64(0); time.Since(start).Seconds() < seconds; step++ {
				stats, _ := driver.Run(step, 1)
				delivered += stats.Samples
				failed += stats.Failures
			}
		}
		crashed := 0
		for _, rs := range cluster.RegionServers() {
			if rs.Crashed() {
				crashed++
			}
		}
		fmt.Printf("  buffered=%-5v delivered=%10d  failed-batches=%6d  crashed-regionservers=%d/%d\n",
			buffered, delivered, failed, crashed, nodes)
		cluster.Stop()
	}
	fmt.Println("  (paper: without the proxy, RegionServers crashed from overloaded RPC queues)")
}

func runCompaction(nodes, units, sensors int) {
	for _, enabled := range []bool{false, true} {
		cluster, err := hbase.NewCluster(hbase.Config{RegionServers: nodes})
		if err != nil {
			log.Fatalf("tsdbench: %v", err)
		}
		deploy, err := tsdb.NewDeployment(cluster, 1, tsdb.TSDConfig{SaltBuckets: nodes, CompactionEnabled: enabled})
		if err != nil {
			log.Fatalf("tsdbench: %v", err)
		}
		if err := deploy.CreateTable(); err != nil {
			log.Fatalf("tsdbench: %v", err)
		}
		tsd := deploy.TSDs()[0]
		fleet := simdata.NewFleet(simdata.Config{Units: units, SensorsPerUnit: sensors, Seed: 42})
		var pts []tsdb.Point
		for t := int64(0); t < 20; t++ {
			for u := 0; u < min(units, 5); u++ {
				for s := 0; s < min(sensors, 50); s++ {
					pts = append(pts, tsdb.EnergyPoint(u, s, t, fleet.Value(u, s, t)))
				}
			}
		}
		before := cluster.Network().Calls.Value()
		if err := tsd.Put(pts); err != nil {
			log.Fatalf("tsdbench: %v", err)
		}
		if _, err := tsd.CompactRows(1 << 40); err != nil {
			log.Fatalf("tsdbench: %v", err)
		}
		calls := cluster.Network().Calls.Value() - before
		fmt.Printf("  compaction=%-5v  RPC calls for %d samples: %d (%.3f calls/sample)\n",
			enabled, len(pts), calls, float64(calls)/float64(len(pts)))
		cluster.Stop()
	}
	fmt.Println("  (paper: compaction was disabled to reduce RPC calls to HBase)")
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
