// Command benchgate is the bench-regression ratchet: it reads a fresh
// `go test -bench -benchmem` run on stdin, the committed BENCH_*.json
// baselines, and a pin file naming which (benchmark, metric) pairs are
// guarded with what tolerance — and exits non-zero when a fresh number
// regresses past tolerance, or when a pin matched nothing (so a
// renamed benchmark cannot silently un-gate itself).
//
//	go test -run '^$' -bench 'Query' -benchmem ./internal/query/ |
//	  benchgate -pins BENCH_PINS -baseline BENCH_query.json
//
// Pin file format: one `benchmark-prefix metric tolerance` triple per
// line, '#' comments and blank lines ignored. The longest matching
// prefix wins per metric; a shorter pin whose every match is shadowed
// by longer pins still counts as matched, not dangling. The metric is `ns_per_op`, `bytes_per_op`,
// `allocs_per_op`, or any custom unit the benchmark reports
// (`samples/s`, `bytes/sample`, ...). Tolerance is a factor >= 1:
// lower-is-better metrics (ns/op, B/op, allocs/op, bytes/sample) fail
// when fresh > baseline*tolerance; higher-is-better metrics (rates)
// fail when fresh < baseline/tolerance. Tolerances absorb shared-
// runner noise; a genuine 2x regression still fails. After an
// intentional perf change, refresh the baselines (`make bench-json`)
// in the same commit.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"repro/internal/benchparse"
)

// entry mirrors cmd/benchjson's per-benchmark JSON shape.
type entry struct {
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op"`
	AllocsPerOp float64            `json:"allocs_per_op"`
	Metrics     map[string]float64 `json:"metrics"`
}

type baselineDoc struct {
	Benchmarks map[string]entry `json:"benchmarks"`
}

type pin struct {
	prefix    string
	metric    string
	tolerance float64
	hits      int
}

// lowerBetter lists the metrics where a bigger fresh number is a
// regression. Everything else (samples/s and friends) is a rate:
// smaller is the regression.
var lowerBetter = map[string]bool{
	"ns_per_op":     true,
	"bytes_per_op":  true,
	"allocs_per_op": true,
	"bytes/sample":  true,
}

type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ",") }
func (m *multiFlag) Set(v string) error { *m = append(*m, v); return nil }

func main() {
	pinsPath := flag.String("pins", "BENCH_PINS", "pin file (benchmark-prefix metric tolerance per line)")
	var baselines, only, skip multiFlag
	flag.Var(&baselines, "baseline", "committed BENCH_*.json baseline (repeatable)")
	flag.Var(&only, "only", "enforce only pins whose prefix starts with this (repeatable)")
	flag.Var(&skip, "skip", "ignore pins whose prefix starts with this (repeatable)")
	flag.Parse()

	pins, err := loadPins(*pinsPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(1)
	}
	pins = filterPins(pins, only, skip)
	if len(pins) == 0 {
		fmt.Fprintln(os.Stderr, "benchgate: no pins left after -only/-skip")
		os.Exit(1)
	}
	if len(baselines) == 0 {
		fmt.Fprintln(os.Stderr, "benchgate: at least one -baseline required")
		os.Exit(1)
	}
	base := map[string]entry{}
	for _, path := range baselines {
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchgate:", err)
			os.Exit(1)
		}
		var doc baselineDoc
		if err := json.Unmarshal(data, &doc); err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: %s: %v\n", path, err)
			os.Exit(1)
		}
		for name, e := range doc.Benchmarks {
			base[name] = e
		}
	}

	checked, violations, err := gate(pins, base, os.Stdin, os.Stdout, os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(1)
	}
	if checked == 0 {
		fmt.Fprintln(os.Stderr, "benchgate: no pinned benchmarks on stdin")
		os.Exit(1)
	}
	if violations > 0 {
		fmt.Fprintf(os.Stderr, "benchgate: %d violation(s)\n", violations)
		os.Exit(1)
	}
	fmt.Printf("benchgate: %d metric(s) within tolerance\n", checked)
}

// filterPins applies the -only/-skip prefix selectors, letting one
// pin file serve runs that exercise different benchmark subsets (the
// PR-loop bench-gate skips the load pins; load-smoke enforces only
// them) without un-pinned pins failing as dangling.
func filterPins(pins []*pin, only, skip []string) []*pin {
	anyPrefix := func(s string, prefixes []string) bool {
		for _, p := range prefixes {
			if strings.HasPrefix(s, p) {
				return true
			}
		}
		return false
	}
	var kept []*pin
	for _, p := range pins {
		if len(only) > 0 && !anyPrefix(p.prefix, only) {
			continue
		}
		if anyPrefix(p.prefix, skip) {
			continue
		}
		kept = append(kept, p)
	}
	return kept
}

// gate compares the bench run on in against base under pins, reporting
// passes to out and failures to errOut. It returns the number of
// (benchmark, metric) pairs checked and the number of violations.
func gate(pins []*pin, base map[string]entry, in io.Reader, out, errOut io.Writer) (checked, violations int, err error) {
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		r, ok := benchparse.Parse(sc.Text())
		if !ok {
			continue
		}
		b, ok := base[r.Name]
		if !ok {
			continue // fresh benchmark with no committed baseline yet
		}
		for _, p := range pins {
			if !strings.HasPrefix(r.Name, p.prefix) {
				continue
			}
			if better := match(pins, r.Name, p.metric); better != p {
				// A longer prefix guards this benchmark's metric, but the
				// pin did match it — count the hit so a pin whose every
				// match is shadowed isn't failed as dangling below.
				p.hits++
				continue
			}
			cur, curOK := metricValue(benchEntry(r), p.metric)
			ref, refOK := metricValue(b, p.metric)
			if !curOK || !refOK {
				violations++
				fmt.Fprintf(errOut, "benchgate: FAIL %s: metric %q missing (fresh %v, baseline %v)\n",
					r.Name, p.metric, curOK, refOK)
				continue
			}
			p.hits++
			checked++
			if bad, limit := regressed(cur, ref, p.metric, p.tolerance); bad {
				violations++
				fmt.Fprintf(errOut, "benchgate: FAIL %s %s: %s vs baseline %s (limit %s, tolerance %gx)\n",
					r.Name, p.metric, fmtNum(cur), fmtNum(ref), fmtNum(limit), p.tolerance)
			} else {
				fmt.Fprintf(out, "benchgate: ok   %s %s: %s vs baseline %s (limit %s)\n",
					r.Name, p.metric, fmtNum(cur), fmtNum(ref), fmtNum(limit))
			}
		}
	}
	if err := sc.Err(); err != nil {
		return checked, violations, fmt.Errorf("read input: %w", err)
	}
	for _, p := range pins {
		if p.hits == 0 {
			violations++
			fmt.Fprintf(errOut, "benchgate: FAIL pin %q %s matched no benchmark (renamed? not run?)\n",
				p.prefix, p.metric)
		}
	}
	return checked, violations, nil
}

// regressed reports whether cur regressed past tolerance relative to
// ref, and the limit it was held to.
func regressed(cur, ref float64, metric string, tol float64) (bool, float64) {
	if lowerBetter[metric] {
		limit := ref * tol
		return cur > limit, limit
	}
	limit := ref / tol
	return cur < limit, limit
}

func benchEntry(r benchparse.Result) entry {
	return entry{NsPerOp: r.NsPerOp, BytesPerOp: r.BytesPerOp, AllocsPerOp: r.AllocsPerOp, Metrics: r.Metrics}
}

func metricValue(e entry, metric string) (float64, bool) {
	switch metric {
	case "ns_per_op":
		return e.NsPerOp, e.NsPerOp > 0
	case "bytes_per_op":
		return e.BytesPerOp, true
	case "allocs_per_op":
		return e.AllocsPerOp, true
	default:
		v, ok := e.Metrics[metric]
		return v, ok
	}
}

func fmtNum(v float64) string {
	return strconv.FormatFloat(v, 'g', 6, 64)
}

func loadPins(path string) ([]*pin, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var pins []*pin
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 3 {
			return nil, fmt.Errorf("%s: bad pin line %q (want: prefix metric tolerance)", path, line)
		}
		tol, err := strconv.ParseFloat(fields[2], 64)
		if err != nil || tol < 1 {
			return nil, fmt.Errorf("%s: bad tolerance in %q (must be a factor >= 1)", path, line)
		}
		pins = append(pins, &pin{prefix: fields[0], metric: fields[1], tolerance: tol})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(pins) == 0 {
		return nil, fmt.Errorf("%s: no pins", path)
	}
	// Longest prefix first, so match() can take the first hit.
	sort.Slice(pins, func(i, j int) bool { return len(pins[i].prefix) > len(pins[j].prefix) })
	return pins, nil
}

// match returns the winning pin for (name, metric): the longest
// matching prefix that guards that metric.
func match(pins []*pin, name, metric string) *pin {
	for _, p := range pins {
		if p.metric == metric && strings.HasPrefix(name, p.prefix) {
			return p
		}
	}
	return nil
}
