package main

import (
	"io"
	"os"
	"sort"
	"strings"
	"testing"
)

func testPins(t *testing.T, lines ...string) []*pin {
	t.Helper()
	path := t.TempDir() + "/BENCH_PINS"
	if err := os.WriteFile(path, []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	pins, err := loadPins(path)
	if err != nil {
		t.Fatal(err)
	}
	return pins
}

func runGate(t *testing.T, pins []*pin, base map[string]entry, input string) (checked, violations int) {
	t.Helper()
	checked, violations, err := gate(pins, base, strings.NewReader(input), io.Discard, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	return checked, violations
}

func TestGateWithinTolerance(t *testing.T) {
	pins := testPins(t, "BenchmarkFoo ns_per_op 2")
	base := map[string]entry{"BenchmarkFoo": {NsPerOp: 100}}
	checked, violations := runGate(t, pins, base, "BenchmarkFoo-8  1000  150 ns/op\n")
	if checked != 1 || violations != 0 {
		t.Fatalf("checked %d / violations %d, want 1 / 0", checked, violations)
	}
}

func TestGateCatchesRegression(t *testing.T) {
	pins := testPins(t, "BenchmarkFoo ns_per_op 2")
	base := map[string]entry{"BenchmarkFoo": {NsPerOp: 100}}
	if _, violations := runGate(t, pins, base, "BenchmarkFoo-8  1000  250 ns/op\n"); violations != 1 {
		t.Fatalf("violations = %d, want 1", violations)
	}
	// Rates regress downward.
	pins = testPins(t, "BenchmarkBar samples/s 2")
	base = map[string]entry{"BenchmarkBar": {Metrics: map[string]float64{"samples/s": 1000}}}
	if _, violations := runGate(t, pins, base, "BenchmarkBar-8  1000  10 ns/op  400 samples/s\n"); violations != 1 {
		t.Fatalf("rate violations = %d, want 1", violations)
	}
}

func TestGateDanglingPinFails(t *testing.T) {
	pins := testPins(t, "BenchmarkFoo ns_per_op 2", "BenchmarkGone ns_per_op 2")
	base := map[string]entry{"BenchmarkFoo": {NsPerOp: 100}}
	if _, violations := runGate(t, pins, base, "BenchmarkFoo-8  1000  100 ns/op\n"); violations != 1 {
		t.Fatalf("violations = %d, want 1 (renamed pin must fail)", violations)
	}
}

func TestGateShadowedPinIsNotDangling(t *testing.T) {
	// Every benchmark matching the short pin is guarded by the longer
	// one; the short pin must still count as matched, not fail the run.
	pins := testPins(t,
		"BenchmarkFoo ns_per_op 2",
		"BenchmarkFooBar ns_per_op 3",
	)
	base := map[string]entry{"BenchmarkFooBar": {NsPerOp: 100}}
	checked, violations := runGate(t, pins, base, "BenchmarkFooBar-8  1000  120 ns/op\n")
	if violations != 0 {
		t.Fatalf("violations = %d, want 0 (shadowed pin flagged as dangling)", violations)
	}
	// Only the longer pin actually checks the metric.
	if checked != 1 {
		t.Fatalf("checked = %d, want 1", checked)
	}
	// And the longer pin's tolerance is the one applied: 250 ns/op is
	// within 3x of 100 but past the shorter pin's 2x.
	if _, violations := runGate(t, pins, base, "BenchmarkFooBar-8  1000  250 ns/op\n"); violations != 0 {
		t.Fatalf("violations = %d, want 0 (longest prefix's tolerance governs)", violations)
	}
}

func TestFilterPinsOnlySkip(t *testing.T) {
	pins := testPins(t,
		"BenchmarkLoadIngest samples/s 3",
		"BenchmarkLoadQuery ns_per_op 4",
		"BenchmarkQueryCacheHit ns_per_op 4",
	)
	names := func(ps []*pin) string {
		var out []string
		for _, p := range ps {
			out = append(out, p.prefix)
		}
		sort.Strings(out)
		return strings.Join(out, ",")
	}
	if got := names(filterPins(pins, []string{"BenchmarkLoad"}, nil)); got != "BenchmarkLoadIngest,BenchmarkLoadQuery" {
		t.Fatalf("-only BenchmarkLoad kept %q", got)
	}
	if got := names(filterPins(pins, nil, []string{"BenchmarkLoad"})); got != "BenchmarkQueryCacheHit" {
		t.Fatalf("-skip BenchmarkLoad kept %q", got)
	}
	if got := names(filterPins(pins, nil, nil)); got != "BenchmarkLoadIngest,BenchmarkLoadQuery,BenchmarkQueryCacheHit" {
		t.Fatalf("no filters kept %q", got)
	}
	if got := filterPins(pins, []string{"BenchmarkLoad"}, []string{"BenchmarkLoad"}); len(got) != 0 {
		t.Fatalf("only+skip of the same prefix kept %d pins", len(got))
	}
}

// A skipped pin that matches nothing on stdin must not fail as
// dangling — that is the whole point of -skip for subset runs.
func TestSkippedPinNotDangling(t *testing.T) {
	pins := testPins(t,
		"BenchmarkLoadIngest samples/s 3",
		"BenchmarkFoo ns_per_op 2",
	)
	pins = filterPins(pins, nil, []string{"BenchmarkLoad"})
	base := map[string]entry{"BenchmarkFoo": {NsPerOp: 100}}
	checked, violations := runGate(t, pins, base, "BenchmarkFoo-8  1000  100 ns/op\n")
	if checked != 1 || violations != 0 {
		t.Fatalf("checked %d / violations %d, want 1 / 0", checked, violations)
	}
}
