// Command datagen emits the paper's synthetic evaluation dataset
// (§II-A): a fleet of simulated power-generating assets with injected
// faults, in CSV, OpenTSDB line-protocol or JSON form.
//
// Usage:
//
//	datagen -units 100 -sensors 1000 -steps 60 -format csv > fleet.csv
//	datagen -units 10 -sensors 50 -steps 120 -format lines -faults
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/ingest"
	"repro/internal/simdata"
	"repro/internal/tsdb"
)

func main() {
	var (
		units   = flag.Int("units", 100, "number of simulated units")
		sensors = flag.Int("sensors", 1000, "sensors per unit")
		seed    = flag.Uint64("seed", 42, "generator seed")
		from    = flag.Int64("from", 0, "first time step (seconds)")
		steps   = flag.Int("steps", 60, "number of 1 Hz time steps")
		format  = flag.String("format", "csv", "output format: csv | lines | json")
		out     = flag.String("out", "-", "output file (default stdout)")
		faults  = flag.Bool("faults", false, "append a ground-truth fault column/file")
		onset   = flag.Int64("onset", 600, "fault onset step")
	)
	flag.Parse()

	fleet := simdata.NewFleet(simdata.Config{
		Units:          *units,
		SensorsPerUnit: *sensors,
		Seed:           *seed,
		FaultOnset:     *onset,
	})

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatalf("datagen: %v", err)
		}
		defer f.Close()
		w = f
	}
	bw := bufio.NewWriterSize(w, 1<<20)
	defer bw.Flush()

	switch *format {
	case "csv":
		fmt.Fprintln(bw, "timestamp,unit,sensor,value,faulty")
		for t := *from; t < *from+int64(*steps); t++ {
			for u := 0; u < *units; u++ {
				for s := 0; s < *sensors; s++ {
					faulty := 0
					if *faults && fleet.Faulty(u, s, t) {
						faulty = 1
					}
					fmt.Fprintf(bw, "%d,%d,%d,%g,%d\n", t, u, s, fleet.Value(u, s, t), faulty)
				}
			}
		}
	case "lines":
		for t := *from; t < *from+int64(*steps); t++ {
			for u := 0; u < *units; u++ {
				for s := 0; s < *sensors; s++ {
					p := tsdb.EnergyPoint(u, s, t, fleet.Value(u, s, t))
					fmt.Fprintln(bw, ingest.FormatLine(&p))
				}
			}
		}
	case "json":
		const chunk = 10000
		batch := make([]tsdb.Point, 0, chunk)
		flush := func() {
			if len(batch) == 0 {
				return
			}
			body, err := ingest.FormatJSON(batch)
			if err != nil {
				log.Fatalf("datagen: %v", err)
			}
			bw.Write(body)
			bw.WriteByte('\n')
			batch = batch[:0]
		}
		for t := *from; t < *from+int64(*steps); t++ {
			for u := 0; u < *units; u++ {
				for s := 0; s < *sensors; s++ {
					batch = append(batch, tsdb.EnergyPoint(u, s, t, fleet.Value(u, s, t)))
					if len(batch) == chunk {
						flush()
					}
				}
			}
		}
		flush()
	default:
		log.Fatalf("datagen: unknown format %q (want csv, lines or json)", *format)
	}
}
