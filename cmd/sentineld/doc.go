// Command sentineld runs one node of a multi-process sentinel
// cluster. Each process carries one or more roles over the shared rpc
// fabric (see package sentinel's cluster runtime):
//
//	broker   bus replica + partition-group election candidate
//	store    HBase cluster + TSD tier + proxy + storage writers
//	detect   streaming detector pool over the remote bus
//	gateway  web surface + coordination (ZooKeeper-like) service
//
// A four-process cluster, one broker, two stores, and a combined
// detect+gateway node hosting coordination:
//
//	PEERS=broker=127.0.0.1:7401,store-1=127.0.0.1:7402,store-2=127.0.0.1:7403,dg=127.0.0.1:7404
//	sentineld -name broker  -role broker       -listen 127.0.0.1:7401 -peers $PEERS -zk-node dg -stores 2
//	sentineld -name store-1 -role store        -listen 127.0.0.1:7402 -peers $PEERS -zk-node dg -stores 2
//	sentineld -name store-2 -role store        -listen 127.0.0.1:7403 -peers $PEERS -zk-node dg -stores 2
//	sentineld -name dg -role detect,gateway -listen 127.0.0.1:7404 -peers $PEERS -stores 2 -http 127.0.0.1:8080
//
// Every node must agree on -partitions, -units and -sensors. The
// gateway's -http serves the full /api/v1 surface (ingest, query,
// SSE anomaly stream, metrics, readiness, the cluster map and the
// HTML control center); on other roles -http serves a minimal ops
// surface (metrics, cluster map, health). SIGINT/SIGTERM shut the
// node down cleanly, deleting its membership record.
package main
