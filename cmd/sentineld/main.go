package main

import (
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"repro/sentinel"
)

func main() {
	var (
		name         = flag.String("name", "", "cluster-unique node name (required)")
		roles        = flag.String("role", "", "comma-separated roles: broker,store,detect,gateway (required)")
		listen       = flag.String("listen", "127.0.0.1:0", "rpc transport listen address")
		httpAddr     = flag.String("http", "", "HTTP listen address (empty disables)")
		peers        = flag.String("peers", "", "comma-separated name=host:port pairs, one per cluster node")
		zkNode       = flag.String("zk-node", "", "peer hosting the coordination service (default: self when gateway)")
		partitions   = flag.Int("partitions", 4, "cluster-wide bus partition count")
		units        = flag.Int("units", 10, "fleet units")
		sensors      = flag.Int("sensors", 8, "sensors per unit")
		storageNodes = flag.Int("storage-nodes", 2, "region servers / TSD daemons on a store node")
		writers      = flag.Int("writers", 2, "storage writer consumers on a store node")
		workers      = flag.Int("workers", 2, "detector pool workers on a detect node")
		detector     = flag.String("detector", "cusum", "primary detector family on detect nodes")
		warmup       = flag.Int("warmup", 0, "detector warmup rows (0 = family default)")
		stores       = flag.Int("stores", 1, "store nodes to wait for before serving")
		seed         = flag.Uint64("seed", 42, "detector seed")
	)
	flag.Parse()
	log.SetPrefix("sentineld: ")
	log.SetFlags(log.Ltime | log.Lmicroseconds)

	roleList, err := sentinel.ParseRoles(*roles)
	if err != nil {
		log.Fatal(err)
	}
	peerMap := make(map[string]string)
	if *peers != "" {
		for _, pair := range strings.Split(*peers, ",") {
			kv := strings.SplitN(pair, "=", 2)
			if len(kv) != 2 || kv[0] == "" || kv[1] == "" {
				log.Fatalf("bad -peers entry %q (want name=host:port)", pair)
			}
			peerMap[kv[0]] = kv[1]
		}
	}

	var detParams map[string]float64
	if *warmup > 0 {
		detParams = map[string]float64{"warmup": float64(*warmup)}
	}

	node, err := sentinel.StartNode(sentinel.NodeConfig{
		Name:            *name,
		Roles:           roleList,
		Listen:          *listen,
		Peers:           peerMap,
		ZKNode:          *zkNode,
		Partitions:      *partitions,
		Units:           *units,
		SensorsPerUnit:  *sensors,
		StorageNodes:    *storageNodes,
		StorageWriters:  *writers,
		DetectorWorkers: *workers,
		PrimaryDetector: *detector,
		DetectorParams:  detParams,
		ExpectStores:    *stores,
		Seed:            *seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("%s serving roles [%s] on %s", node.Name(), *roles, node.Addr())

	var srv *http.Server
	if *httpAddr != "" {
		srv = &http.Server{Addr: *httpAddr, Handler: node.Handler()}
		go func() {
			if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				log.Fatalf("http: %v", err)
			}
		}()
		log.Printf("%s http on %s", node.Name(), *httpAddr)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Printf("%s shutting down", node.Name())
	if srv != nil {
		srv.Close()
	}
	node.Close()
}
