// Command allocgate turns the repo's allocs/op pins into a CI gate: it
// reads `go test -bench -benchmem` output on stdin and a pin file
// mapping benchmark-name prefixes to the maximum allowed allocs/op,
// and exits non-zero if any pinned benchmark exceeds its ceiling — or
// if a pin matched nothing, so a renamed benchmark cannot silently
// un-gate itself.
//
//	go test -run '^$' -bench 'Into' -benchtime=1x -benchmem ./... | allocgate -pins ALLOC_PINS
//
// Pin file format: one `prefix max-allocs` pair per line, '#' comments
// and blank lines ignored. The longest matching prefix wins, so a
// family pin (`BenchmarkApplyInto 0`) can be overridden for one
// sub-benchmark. Benchmarks with no matching prefix are ignored.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"repro/internal/benchparse"
)

type pin struct {
	prefix string
	max    float64
	hits   int
}

func main() {
	pinsPath := flag.String("pins", "ALLOC_PINS", "pin file (benchmark-prefix max-allocs per line)")
	flag.Parse()

	pins, err := loadPins(*pinsPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "allocgate:", err)
		os.Exit(1)
	}

	violations := 0
	checked := 0
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		r, ok := benchparse.Parse(sc.Text())
		if !ok || !r.HasAllocs {
			continue
		}
		p := match(pins, r.Name)
		if p == nil {
			continue
		}
		p.hits++
		checked++
		if r.AllocsPerOp > p.max {
			violations++
			fmt.Fprintf(os.Stderr, "allocgate: FAIL %s: %g allocs/op > pin %g (prefix %s)\n",
				r.Name, r.AllocsPerOp, p.max, p.prefix)
		} else {
			fmt.Printf("allocgate: ok   %s: %g allocs/op <= %g\n", r.Name, r.AllocsPerOp, p.max)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "allocgate: read stdin:", err)
		os.Exit(1)
	}
	for _, p := range pins {
		if p.hits == 0 {
			violations++
			fmt.Fprintf(os.Stderr, "allocgate: FAIL pin %q matched no benchmark (renamed? not run?)\n", p.prefix)
		}
	}
	if checked == 0 {
		fmt.Fprintln(os.Stderr, "allocgate: no pinned benchmarks on stdin")
		os.Exit(1)
	}
	if violations > 0 {
		fmt.Fprintf(os.Stderr, "allocgate: %d violation(s)\n", violations)
		os.Exit(1)
	}
	fmt.Printf("allocgate: %d benchmark(s) within pins\n", checked)
}

func loadPins(path string) ([]*pin, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var pins []*pin
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return nil, fmt.Errorf("%s: bad pin line %q", path, line)
		}
		max, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			return nil, fmt.Errorf("%s: bad max in %q", path, line)
		}
		pins = append(pins, &pin{prefix: fields[0], max: max})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(pins) == 0 {
		return nil, fmt.Errorf("%s: no pins", path)
	}
	// Longest prefix first, so match() can take the first hit.
	sort.Slice(pins, func(i, j int) bool { return len(pins[i].prefix) > len(pins[j].prefix) })
	return pins, nil
}

func match(pins []*pin, name string) *pin {
	for _, p := range pins {
		if strings.HasPrefix(name, p.prefix) {
			return p
		}
	}
	return nil
}
